"""The chaos matrix: seeded storm workloads under supervised recovery.

Each :class:`ChaosSpec` names a failure regime — intermittent faults a
flaky medium absorbs through retries, fail-stop faults that kill the run
and force an automatic restore, a disk that reports full and pushes the
runtime into degraded mode — and :func:`run_chaos_case` executes the same
seeded storm twice: once fault-free (the reference) and once under the
spec's :class:`~repro.testing.faults.FaultPlan` with a
:class:`~repro.core.recovery.RecoveryPolicy` supervising.

The verdict leans on the StormActor property PR 1 established: cascades
are delivery-order independent (the forwarding PRNG is keyed on
cascade-tree tokens, never arrival order), so the final application state
is a pure function of the spec — any retry, rollback or replay the
recovery machinery performs must land on *exactly* the reference state,
and the cross-layer invariants must hold at every phase boundary.

Everything is seeded: a failing case replays bit-for-bit.  Used by
``tests/test_chaos_recovery.py`` and the ``mrts-bench chaos`` subcommand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import MRTSConfig
from repro.core.recovery import RecoveryPolicy
from repro.core.packfile import PackFileBackend
from repro.core.runtime import MRTS
from repro.core.storage import MemoryBackend
from repro.obs.events import EventBus
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing.faults import FaultPlan, FaultyBackend
from repro.testing.harness import FixedCostModel
from repro.testing.invariants import check_runtime
from repro.testing.workloads import DeltaStormActor, StormActor

__all__ = ["ChaosSpec", "ChaosReport", "CHAOS_MATRIX", "run_chaos_case",
           "run_chaos_matrix", "DistChaosSpec", "DIST_CHAOS_MATRIX",
           "run_dist_chaos_case", "run_dist_chaos_matrix",
           "ServeChaosSpec", "SERVE_CHAOS_MATRIX",
           "run_serve_chaos_case", "run_serve_chaos_matrix",
           "SpecChaosSpec", "SPEC_CHAOS_MATRIX",
           "run_spec_chaos_case", "run_spec_chaos_matrix"]

# Sentinel: the recovered incarnations keep the same fault plan as the
# first (the medium stays flaky); ``None`` means the rebuilt incarnation
# gets a healthy medium (the failed disk was replaced).
SAME_PLAN = "same"


@dataclass(frozen=True)
class ChaosSpec:
    """One cell of the chaos matrix."""

    name: str
    plan: FaultPlan
    # Fault plan for post-restart incarnations: SAME_PLAN or None.
    recovery_plan: Optional[object] = SAME_PLAN
    min_restarts: int = 0          # assert at least this many restarts
    max_restarts: int = 8          # supervisor budget
    expect_retries: bool = False   # assert the retry layer absorbed faults
    expect_degraded: bool = False  # assert degraded mode was entered
    # Workload shape (kept small: the matrix runs in CI).
    n_actors: int = 8
    payload_bytes: int = 2048
    pulses: int = 3
    hops: int = 4
    fanout: int = 2
    grow_every: int = 2
    grow_bytes: int = 1024
    n_nodes: int = 2
    memory_bytes: int = 24 * 1024
    interval: int = 40             # checkpoint interval (retired items)
    seed: int = 0
    # Actor class: StormActor spills whole pickles; DeltaStormActor routes
    # spills through the delta/compression data plane.
    actor: type = StormActor
    # Raw store: "memory" or "packfile" (locality-ordered pack segments).
    backend: str = "memory"
    # Packfile chaos hook: kill the N-th compaction attempt mid-rewrite
    # (chaos run only; the reference always compacts cleanly).
    fail_compaction_at: Optional[int] = None
    expect_compaction_abort: bool = False


@dataclass
class ChaosReport:
    """Outcome of one chaos case."""

    name: str
    state_matches: bool
    violations: list[str] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    restarts: int = 0
    degraded: bool = False
    retries: int = 0
    corrupt_loads: int = 0
    compaction_aborts: int = 0
    events: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        status = "ok" if self.ok else f"FAIL ({len(self.problems)})"
        line = (
            f"{self.name:<24} {status:<10} restarts={self.restarts} "
            f"retries={self.retries} corrupt={self.corrupt_loads}"
            f"{' degraded' if self.degraded else ''}"
        )
        if self.compaction_aborts:
            line += f" compaction_aborts={self.compaction_aborts}"
        for event in self.events:
            line += f"\n    . {event}"
        for problem in self.problems:
            line += f"\n    - {problem}"
        return line


# The matrix.  Ordinals/rates are tuned so faults actually fire inside the
# supervised run (creation + introductions fit in core; the pulse phases
# grow payloads and force spills), and every case is deterministic per seed.
CHAOS_MATRIX: list[ChaosSpec] = [
    ChaosSpec(
        name="intermittent-store",
        plan=FaultPlan(store_fail_rate=0.08, seed=1),
        expect_retries=True,
    ),
    ChaosSpec(
        name="intermittent-load",
        plan=FaultPlan(load_fail_rate=0.08, seed=2),
        expect_retries=True,
    ),
    ChaosSpec(
        name="flaky-nfs",
        plan=FaultPlan(store_fail_rate=0.05, load_fail_rate=0.05,
                       torn_write_fraction=0.5, seed=3),
        expect_retries=True,
    ),
    ChaosSpec(
        name="fail-stop-store",
        plan=FaultPlan(fail_store_at=4, fail_stop=True, seed=4),
        recovery_plan=None,
        min_restarts=1,
    ),
    ChaosSpec(
        name="fail-stop-load",
        plan=FaultPlan(fail_load_at=3, fail_stop=True, seed=5),
        recovery_plan=None,
        min_restarts=1,
    ),
    ChaosSpec(
        name="torn-fail-stop",
        plan=FaultPlan(fail_store_at=2, torn_write_fraction=0.5,
                       fail_stop=True, seed=6),
        recovery_plan=None,
        min_restarts=1,
    ),
    ChaosSpec(
        name="disk-full",
        plan=FaultPlan(disk_full_at=6, seed=7),
        recovery_plan=None,
        min_restarts=1,
        expect_degraded=True,
    ),
    # The delta data plane under fire: payloads spill as compressed
    # append-log frames (bytes-append codec + default compression knobs),
    # and the flaky medium forces retried appends and re-baselines.  Torn
    # writes are excluded by design: FaultyBackend never tears appends
    # (see its docstring), and torn full-spill coverage lives in flaky-nfs.
    ChaosSpec(
        name="delta-compress-storm",
        plan=FaultPlan(store_fail_rate=0.06, load_fail_rate=0.06, seed=8),
        expect_retries=True,
        actor=DeltaStormActor,
    ),
    # Kill the pack-file compactor mid-rewrite (PR 7): growing payloads
    # re-spill over tiny segments, dead bytes pile up fast, and the first
    # compaction attempt dies after half the live set is rewritten.  The
    # swap is atomic, so the old layout must survive byte-for-byte and
    # the retried attempt must reconverge on the reference state.
    ChaosSpec(
        name="packfile-compact-kill",
        plan=FaultPlan(seed=9),  # no medium faults: the kill is the chaos
        backend="packfile",
        fail_compaction_at=1,
        expect_compaction_abort=True,
    ),
]


def _final_state(supervisor_like, pointers) -> dict[int, tuple]:
    """oid -> (hits, forwarded, payload length): the equality witness."""
    out = {}
    for ptr in pointers:
        obj = supervisor_like.get_object(ptr)
        out[ptr.oid] = (obj.hits, obj.forwarded, len(obj.payload))
    return out


def _make_supervisor(
    spec: ChaosSpec, plan: Optional[FaultPlan],
    bus: Optional[EventBus] = None,
) -> RecoveryPolicy:
    """A supervised storm runtime; ``plan=None`` builds the reference.

    ``bus`` (if given) is shared by every incarnation the supervisor
    builds, so one subscription observes the whole supervised lifetime —
    faults, the crash, and the rebuilt world's replay.
    """
    incarnation = [0]

    def factory(config=None) -> MRTS:
        i = incarnation[0]
        incarnation[0] += 1
        if i == 0:
            active = plan
        elif spec.recovery_plan is SAME_PLAN or spec.recovery_plan == SAME_PLAN:
            active = plan
        else:
            active = spec.recovery_plan

        def make_backend(rank: int):
            if spec.backend == "packfile":
                # Tiny segments + a low dead-byte threshold so the storm's
                # re-spills actually trigger compaction; the injected kill
                # only arms on the chaos run (``active`` set).
                inner = PackFileBackend(
                    segment_bytes=4 * 1024,
                    compact_ratio=0.25,
                    fail_compaction_at=(
                        spec.fail_compaction_at if active is not None else None
                    ),
                )
            else:
                inner = MemoryBackend()
            if active is None:
                return inner
            # Reseed per node and per incarnation: nodes must not fail in
            # lockstep, and a restarted run must not replay the exact
            # fault sequence that killed its predecessor.
            return FaultyBackend(
                inner, replace(active, seed=active.seed + rank + 1000 * i)
            )

        return MRTS(
            ClusterSpec(
                n_nodes=spec.n_nodes,
                node=NodeSpec(cores=1, memory_bytes=spec.memory_bytes),
            ),
            config=config or MRTSConfig(),
            storage_factory=make_backend,
            cost_model=FixedCostModel(1e-4),
            bus=bus,
        )

    def build(runtime: MRTS):
        actors = [
            runtime.create_object(
                spec.actor, spec.payload_bytes, spec.seed, spec.grow_every,
                spec.grow_bytes, node=i % spec.n_nodes,
            )
            for i in range(spec.n_actors)
        ]
        for ptr in actors:
            runtime.post(ptr, "meet", actors)
        return actors

    return RecoveryPolicy(
        factory, build=build, interval=spec.interval,
        max_restarts=spec.max_restarts,
    )


def _drive(spec: ChaosSpec, supervisor: RecoveryPolicy) -> list[str]:
    """Run introductions + pulse phases; returns invariant violations.

    Every phase boundary (= possible checkpoint cut) is invariant-checked,
    so a recovery that restored a subtly inconsistent world is caught at
    the next boundary, not just at the end.
    """
    violations: list[str] = []

    def check(label: str) -> None:
        for v in check_runtime(supervisor.runtime):
            violations.append(f"{label}: {v}")

    supervisor.run()  # introductions (the meets posted by build)
    check("after meets")
    actors = sorted(supervisor.pointers.values(), key=lambda p: p.oid)
    rng = random.Random(spec.seed)
    for k in range(spec.pulses):
        target = actors[rng.randrange(len(actors))]
        supervisor.post(target, "pulse", spec.hops, spec.fanout, f"p{k}")
        supervisor.run()
        check(f"after pulse {k}")
    return violations


def run_chaos_case(
    spec: ChaosSpec, bus: Optional[EventBus] = None
) -> ChaosReport:
    """Execute one matrix cell: reference run, chaos run, verdict.

    ``bus`` (if given) observes the *chaos* run across all its
    incarnations; the fault-free reference run is never published to it.
    """
    reference = _make_supervisor(spec, plan=None)
    ref_violations = _drive(spec, reference)
    want = _final_state(
        reference, sorted(reference.pointers.values(), key=lambda p: p.oid)
    )

    chaos = _make_supervisor(spec, plan=spec.plan, bus=bus)
    violations = _drive(spec, chaos)
    got = _final_state(
        chaos, sorted(chaos.pointers.values(), key=lambda p: p.oid)
    )

    stats = chaos.runtime.stats
    aborts = sum(
        n.packfile.compaction_aborts
        for n in chaos.runtime.nodes if n.packfile is not None
    )
    report = ChaosReport(
        name=spec.name,
        state_matches=(got == want),
        violations=violations,
        restarts=chaos.restarts,
        degraded=chaos._degraded,
        retries=stats.storage_retries,
        corrupt_loads=stats.corrupt_loads,
        compaction_aborts=aborts,
        events=list(chaos.events),
    )
    if ref_violations:
        report.problems.append(
            f"reference run violated invariants: {ref_violations}"
        )
    if not report.state_matches:
        diff = {
            oid: (got.get(oid), want.get(oid))
            for oid in set(got) | set(want)
            if got.get(oid) != want.get(oid)
        }
        report.problems.append(f"final state diverged: {diff}")
    if violations:
        report.problems.extend(violations)
    if chaos.restarts < spec.min_restarts:
        report.problems.append(
            f"expected >= {spec.min_restarts} restarts, saw {chaos.restarts}"
        )
    if spec.expect_retries and report.retries == 0:
        report.problems.append("expected the retry layer to absorb faults")
    if spec.expect_degraded and not report.degraded:
        report.problems.append("expected degraded mode to engage")
    if spec.expect_degraded:
        if not all(n.ooc.degraded for n in chaos.runtime.nodes):
            report.problems.append("degraded flag not set on every node")
    if spec.expect_compaction_abort and report.compaction_aborts == 0:
        report.problems.append(
            "expected the compaction kill to fire (dead cell)"
        )
    return report


def run_chaos_matrix(
    specs: Optional[list[ChaosSpec]] = None,
) -> list[ChaosReport]:
    """Run every matrix cell; used by ``mrts-bench chaos``."""
    return [run_chaos_case(spec) for spec in (specs or CHAOS_MATRIX)]


# ==========================================================================
# The speculation chaos matrix: force every speculation to roll back.
# ==========================================================================
#
# PR 9's speculation layer claims mis-speculation is *always* recoverable:
# the pre-speculation snapshot restores the object and the speculated
# messages re-run for real, so the final mesh state is independent of how
# many speculations aborted.  This cell drives the claim to its extreme
# with ``spec_force_abort`` — every validation is made to fail, so every
# speculative execution exercises the rollback path (snapshot restore,
# possibly against spilled post-spec bytes, plus non-speculative re-post)
# — and the resulting UPDR refinement witness must still equal the
# speculation-off reference exactly.


@dataclass(frozen=True)
class SpecChaosSpec:
    """One cell of the speculation chaos matrix."""

    name: str
    total_elements: int = 60_000
    n_nodes: int = 2
    cores: int = 2
    memory_bytes: int = 8 * 1024 * 1024
    min_aborts: int = 1            # dead-cell guard


SPEC_CHAOS_MATRIX: list[SpecChaosSpec] = [
    SpecChaosSpec(name="spec-forced-rollback"),
]


def _updr_witness(result) -> dict[int, tuple]:
    """region_id -> (elements, round): the UPDR equality witness.

    Keyed on the application-level region id (never oids or placement),
    so it is insensitive to scheduling, migration and spill order — the
    axes speculation is allowed to perturb.
    """
    runtime = result.runtime
    out = {}
    for oid in sorted(runtime._objects_by_oid):
        obj = runtime.get_object(runtime._objects_by_oid[oid])
        if hasattr(obj, "region_id") and hasattr(obj, "round"):
            out[obj.region_id] = (obj.elements, obj.round)
    return out


def run_spec_chaos_case(spec: SpecChaosSpec) -> ChaosReport:
    """Execute one speculation cell: reference, forced-rollback run, verdict."""
    from repro.evalsim.apps import run_updr_model

    cluster = ClusterSpec(
        n_nodes=spec.n_nodes,
        node=NodeSpec(cores=spec.cores, memory_bytes=spec.memory_bytes),
    )
    reference = run_updr_model(
        spec.total_elements, cluster, mrts=True,
        config=MRTSConfig(prefetch_depth=3),
    )
    want = _updr_witness(reference)

    chaos = run_updr_model(
        spec.total_elements, cluster, mrts=True,
        config=MRTSConfig(
            prefetch_depth=3, speculation=True, work_stealing=True,
            spec_force_abort=True,
        ),
    )
    got = _updr_witness(chaos)
    stats = chaos.stats

    # The UPDR app pins its coordinator in core for the whole run
    # (``ooc.lock``), which the generic quiescence invariant reports;
    # that lock is the application's deliberate placement, not a leak.
    violations = [
        f"final: {v}" for v in check_runtime(chaos.runtime)
        if "still locked at quiescence" not in v
    ]
    report = ChaosReport(
        name=spec.name,
        state_matches=(got == want),
        violations=violations,
        events=[
            f"spec issued={stats.spec_issued} "
            f"committed={stats.spec_committed} "
            f"aborted={stats.spec_aborted} steals={stats.steals}"
        ],
    )
    if not report.state_matches:
        diff = {
            rid: (got.get(rid), want.get(rid))
            for rid in set(got) | set(want)
            if got.get(rid) != want.get(rid)
        }
        report.problems.append(f"refinement witness diverged: {diff}")
    report.problems.extend(violations)
    if stats.spec_aborted < spec.min_aborts:
        report.problems.append(
            f"expected >= {spec.min_aborts} forced rollbacks, "
            f"saw {stats.spec_aborted} (dead cell)"
        )
    if stats.spec_committed != 0:
        report.problems.append(
            f"spec_force_abort leaked {stats.spec_committed} commits"
        )
    return report


def run_spec_chaos_matrix(
    specs: Optional[list[SpecChaosSpec]] = None,
) -> list[ChaosReport]:
    """Run the speculation matrix; used by ``mrts-bench chaos``."""
    return [run_spec_chaos_case(spec) for spec in (specs or SPEC_CHAOS_MATRIX)]


# ==========================================================================
# The distributed chaos matrix: real worker processes under fire.
# ==========================================================================
#
# Same verification discipline as the simulated matrix — seeded storm,
# fault-free reference, state equality, invariants at phase boundaries —
# but the reference is the *single-process simulator* and the chaos run is
# a :class:`~repro.dist.DistRuntime`, so every cell simultaneously pins
# cross-backend equivalence and fault convergence.  The worker-kill cell
# is the proof that a crash is absorbed by shard re-homing (the recovery
# event log shows the move and the runtime is never rebuilt); the wire
# cell proves exactly-once delivery under a lossy, duplicating link.


@dataclass(frozen=True)
class DistChaosSpec:
    """One cell of the distributed chaos matrix."""

    name: str
    workers: int = 3
    # Crash injection: SIGKILL `kill_rank` once `kill_after_acks` ACKs
    # have been processed (count-based, hence reproducible in shape).
    kill_rank: Optional[int] = None
    kill_after_acks: int = 0
    # Link-fault injection (deterministic per seed, see WireChaos).
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    chaos_seed: int = 0
    expect_rehome: bool = False
    # Workload shape (small: the matrix spawns real processes in CI).
    n_actors: int = 10
    payload_bytes: int = 2048
    pulses: int = 3
    hops: int = 4
    fanout: int = 2
    grow_every: int = 3
    grow_bytes: int = 512
    l0_bytes: int = 8 * 1024
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if not (0.0 <= self.drop_rate < 1.0 and 0.0 <= self.dup_rate < 1.0):
            raise ValueError("drop/dup rates must be in [0, 1)")
        if self.kill_rank is not None and not (
            0 <= self.kill_rank < self.workers
        ):
            raise ValueError("kill_rank out of range")


DIST_CHAOS_MATRIX: list[DistChaosSpec] = [
    # Kill a worker mid-epoch: its shard must re-home from the replicated
    # directory entries and unacked work must be redelivered — no rewind.
    DistChaosSpec(
        name="dist-worker-kill",
        workers=3,
        kill_rank=1,
        kill_after_acks=30,
        expect_rehome=True,
    ),
    # Drop and duplicate wire messages both ways: retransmission plus
    # two-sided dedupe must still deliver exactly once.
    DistChaosSpec(
        name="dist-wire-chaos",
        workers=2,
        drop_rate=0.15,
        dup_rate=0.15,
        chaos_seed=11,
    ),
]


def _dist_reference(spec: DistChaosSpec) -> dict[int, tuple]:
    """Fault-free single-process reference state for a dist cell."""
    from repro.testing.harness import RuntimeHarness

    harness = RuntimeHarness(n_nodes=spec.workers, memory_bytes=1 << 20)
    actors = [
        harness.runtime.create_object(
            StormActor, spec.payload_bytes, spec.seed, spec.grow_every,
            spec.grow_bytes, node=i % spec.workers,
        )
        for i in range(spec.n_actors)
    ]
    for ptr in actors:
        harness.runtime.post(ptr, "meet", actors)
    harness.runtime.run()
    rng = random.Random(spec.seed)
    for k in range(spec.pulses):
        harness.runtime.post(
            actors[rng.randrange(len(actors))], "pulse",
            spec.hops, spec.fanout, f"p{k}",
        )
        harness.runtime.run()
    return _final_state(harness.runtime, actors)


def run_dist_chaos_case(spec: DistChaosSpec) -> ChaosReport:
    """Execute one distributed cell: reference, chaos run, verdict."""
    from repro.dist import DistRuntime, WireChaos
    from repro.testing.invariants import check_dist

    want = _dist_reference(spec)

    chaos = (
        WireChaos(seed=spec.chaos_seed, drop_rate=spec.drop_rate,
                  dup_rate=spec.dup_rate)
        if (spec.drop_rate or spec.dup_rate)
        else None
    )
    violations: list[str] = []
    with DistRuntime(
        spec.workers, l0_bytes=spec.l0_bytes, chaos=chaos,
        rto_s=0.1 if chaos else 0.25,
    ) as runtime:
        if spec.kill_rank is not None:
            runtime.schedule_kill(spec.kill_rank, spec.kill_after_acks)

        def check(label: str) -> None:
            for v in check_dist(runtime):
                violations.append(f"{label}: {v}")

        actors = [
            runtime.create_object(
                StormActor, spec.payload_bytes, spec.seed, spec.grow_every,
                spec.grow_bytes,
            )
            for _ in range(spec.n_actors)
        ]
        for ptr in actors:
            runtime.post(ptr, "meet", actors)
        runtime.run()
        check("after meets")
        rng = random.Random(spec.seed)
        for k in range(spec.pulses):
            target = actors[rng.randrange(len(actors))]
            runtime.post(target, "pulse", spec.hops, spec.fanout, f"p{k}")
            runtime.run()
            check(f"after pulse {k}")
        got = _final_state(runtime, actors)
        stats = runtime.stats
        recovery = runtime.recovery

    report = ChaosReport(
        name=spec.name,
        state_matches=(got == want),
        violations=violations,
        restarts=stats.rehomes,  # re-homes play the restart column's role
        retries=stats.retransmits,
        events=list(recovery.events),
    )
    if not report.state_matches:
        diff = {
            oid: (got.get(oid), want.get(oid))
            for oid in set(got) | set(want)
            if got.get(oid) != want.get(oid)
        }
        report.problems.append(f"final state diverged: {diff}")
    report.problems.extend(violations)
    if spec.expect_rehome:
        if stats.rehomes < 1:
            report.problems.append(
                "expected the crash to be absorbed by a shard re-home"
            )
        if stats.moved_objects < 1:
            report.problems.append("re-home moved no objects")
    if chaos is not None and not (
        chaos.dropped_sends or chaos.dropped_acks or chaos.duplicated_sends
    ):
        report.problems.append("wire chaos never fired (dead cell)")
    return report


def run_dist_chaos_matrix(
    specs: Optional[list[DistChaosSpec]] = None,
) -> list[ChaosReport]:
    """Run the distributed matrix; used by ``mrts-bench chaos --backend dist``."""
    return [run_dist_chaos_case(spec) for spec in (specs or DIST_CHAOS_MATRIX)]


# ==========================================================================
# The service chaos matrix: kill a mesh job mid-phase, resume, compare.
# ==========================================================================
#
# Same discipline once more, one level up the stack: the reference is the
# solo run of a :class:`~repro.serve.meshjob.JobSpec`, the chaos run goes
# through the real :class:`~repro.serve.jobs.JobManager` with a kill hook
# that crashes attempt 1 *mid-phase* (the runtime is abandoned with work
# in flight, exactly like a preemption).  Attempt 2 must resume from the
# last boundary checkpoint — not restart — and land on a final mesh equal
# to the uninterrupted reference, with the runner's cross-layer invariant
# checks clean at every boundary of every incarnation.


@dataclass(frozen=True)
class ServeChaosSpec:
    """One cell of the service chaos matrix."""

    name: str
    # JobSpec keyword arguments; memory is sized so the job genuinely
    # spills (the checkpoint must round-trip evicted state, not just core).
    job: dict = field(default_factory=dict)
    kill_phase: int = 2        # crash once this many boundaries completed
    max_attempts: int = 3
    expect_resume: bool = True


SERVE_CHAOS_MATRIX: list[ServeChaosSpec] = [
    ServeChaosSpec(
        name="serve-kill-midjob",
        job=dict(
            method="updr", geometry="unit_square", h=0.06, nx=3, ny=3,
            n_nodes=2, memory_bytes=48 * 1024, tenant="chaos",
            checkpoint_every=1,
        ),
        kill_phase=2,
    ),
    # Kill mid-ghost-exchange: attempt 1 dies with owner→ghost pushes and
    # their acks in flight; attempt 2 resumes from the boundary checkpoint
    # (versioned ghost tables and the coordinator's ack ledger round-trip
    # through it) and must land byte-equal to the fault-free reference —
    # with the ghost-freshness invariant clean at every boundary of every
    # incarnation.
    ServeChaosSpec(
        name="serve-kill-ghost-exchange",
        job=dict(
            method="updr", geometry="unit_square", h=0.06, nx=3, ny=3,
            ghost_sync=True, n_nodes=2, memory_bytes=48 * 1024,
            tenant="chaos", checkpoint_every=1,
        ),
        kill_phase=2,
    ),
    # Same discipline for the 3D prism patches: kill mid-sweep, resume,
    # and require the exact cell set of the uninterrupted run plus the
    # mesh3d invariants (volume conservation, 2:1 face balance) at the
    # converged boundary.
    ServeChaosSpec(
        name="serve-kill-mesh3d",
        job=dict(
            method="mesh3d", h=0.13, nx=2, ny=2, nz=2,
            n_nodes=2, memory_bytes=96 * 1024, tenant="chaos",
            checkpoint_every=1,
        ),
        kill_phase=2,
    ),
]


def run_serve_chaos_case(
    spec: ServeChaosSpec, bus: Optional[EventBus] = None
) -> ChaosReport:
    """Execute one service cell: solo reference, killed+resumed run, verdict.

    ``bus`` (if given) observes the chaos run's :class:`JobEvent` stream
    — submitted/started/boundary/killed/resumed/finished — which is what
    the Perfetto per-job lanes render.
    """
    from repro.serve.jobs import JobManager
    from repro.serve.meshjob import JobSpec, run_job_solo

    job_spec = JobSpec(**spec.job)
    reference = run_job_solo(job_spec)
    want = reference.final_state()

    kills: list[str] = []

    def kill_hook(job, attempt: int) -> Optional[int]:
        if attempt == 1:
            kills.append(job.job_id)
            return spec.kill_phase
        return None

    manager = JobManager(
        workers=1, keep_runtimes=True, kill_hook=kill_hook,
        max_attempts=spec.max_attempts, bus=bus,
    )
    try:
        job = manager.submit(job_spec)
        if not manager.drain(timeout=300):
            job.violations.append("manager failed to drain within 300s")
    finally:
        manager.shutdown(drain=False)

    got = job.runner.final_state() if job.runner is not None else None
    report = ChaosReport(
        name=spec.name,
        state_matches=(got == want),
        violations=list(job.violations),
        restarts=max(0, job.attempts - 1),
        events=[
            f"job {job.job_id}: state={job.state} attempts={job.attempts} "
            f"boundaries={job.boundaries} error={job.error}"
        ],
    )
    if reference.violations:
        report.problems.append(
            f"reference run violated invariants: {reference.violations}"
        )
    if not kills:
        report.problems.append("kill hook never fired (dead cell)")
    if job.state != "finished":
        report.problems.append(
            f"job ended {job.state!r} (error: {job.error})"
        )
    if spec.expect_resume and job.attempts < 2:
        report.problems.append(
            f"expected a resumed second attempt, saw {job.attempts}"
        )
    if not report.state_matches:
        report.problems.append(
            "resumed final state diverged from the uninterrupted reference"
        )
    report.problems.extend(report.violations)
    return report


def run_serve_chaos_matrix(
    specs: Optional[list[ServeChaosSpec]] = None,
) -> list[ChaosReport]:
    """Run the service matrix; used by ``mrts-bench chaos``."""
    return [run_serve_chaos_case(spec) for spec in (specs or SERVE_CHAOS_MATRIX)]
