"""repro.testing — verification harness for the MRTS runtime.

The paper evaluates MRTS by running three mesh generation methods on real
clusters and checking the runs complete with the expected breakdowns.  A
reproduction needs something stronger and cheaper: a way to *prove to
ourselves*, on every change, that the four layers still agree with each
other and with their specifications.  This package is that apparatus:

* :mod:`repro.testing.faults` — deterministic fault injection for the
  storage layer (fail the Nth store, torn writes, intermittent seeded
  failures) so recovery paths are testable instead of theoretical;
* :mod:`repro.testing.invariants` — executable cross-layer invariants
  (memory accounting, residency/storage agreement, directory truth,
  quiescence) checked against a live runtime;
* :mod:`repro.testing.models` — small, obviously-correct reference models
  of the five swapping schemes for model-based property testing;
* :mod:`repro.testing.workloads` — seeded workload generators (object
  populations, skewed access traces, message storms) shared by tests,
  stress runs and benchmarks;
* :mod:`repro.testing.harness` — :class:`RuntimeHarness`, wiring the above
  into an invariant-checked runtime factory, plus :func:`selftest` used by
  ``mrts-bench selftest``;
* :mod:`repro.testing.chaos` — the seeded chaos matrix: storm workloads
  under intermittent / fail-stop / torn-write / disk-full fault plans with
  automatic recovery enabled, verified against the fault-free run (used by
  ``mrts-bench chaos``).

Everything here is import-light and dependency-free so production code can
ship it (the CLI selftest uses it operationally, not just in pytest).
"""

from repro.testing.chaos import (
    CHAOS_MATRIX,
    ChaosReport,
    ChaosSpec,
    run_chaos_case,
    run_chaos_matrix,
)
from repro.testing.faults import FaultPlan, FaultyBackend, StorageFault
from repro.testing.harness import HarnessReport, RuntimeHarness, selftest
from repro.testing.invariants import (
    InvariantViolation,
    assert_invariants,
    check_mesh,
    check_ooc_layer,
    check_runtime,
)
from repro.testing.models import (
    ReferenceLFU,
    ReferenceLRU,
    ReferenceLU,
    ReferenceMRU,
    ReferenceMU,
    make_reference,
)
from repro.testing.workloads import (
    StormActor,
    WorkloadSpec,
    access_trace,
    object_sizes,
    run_storm,
)

__all__ = [
    "CHAOS_MATRIX",
    "ChaosReport",
    "ChaosSpec",
    "run_chaos_case",
    "run_chaos_matrix",
    "FaultPlan",
    "FaultyBackend",
    "StorageFault",
    "HarnessReport",
    "RuntimeHarness",
    "selftest",
    "InvariantViolation",
    "assert_invariants",
    "check_mesh",
    "check_ooc_layer",
    "check_runtime",
    "ReferenceLFU",
    "ReferenceLRU",
    "ReferenceLU",
    "ReferenceMRU",
    "ReferenceMU",
    "make_reference",
    "StormActor",
    "WorkloadSpec",
    "access_trace",
    "object_sizes",
    "run_storm",
]
