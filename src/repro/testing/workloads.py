"""Seeded synthetic workloads for stress-testing the runtime.

Real PUMG runs exercise the runtime with whatever access pattern the mesh
dictates; these generators produce *adjustable* patterns — skewed object
popularity, deep message cascades, mid-handler growth — so tests can aim
pressure at one mechanism at a time (eviction churn, directory chasing,
resize overruns) and still be bit-for-bit reproducible from a seed.

Nothing here uses global randomness: every choice derives from the seed
carried in the :class:`WorkloadSpec` (or inside each actor), so two runs
of the same spec on the same runtime configuration are identical — which
is itself one of the properties the test suite asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.codec import get_codec
from repro.core.mobile import MobileObject
from repro.core.runtime import handler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mobile import MobilePointer
    from repro.core.runtime import MRTS

__all__ = ["WorkloadSpec", "StormActor", "DeltaStormActor", "access_trace",
           "object_sizes", "run_storm"]


def object_sizes(
    n: int, seed: int = 0, min_bytes: int = 512, max_bytes: int = 8192
) -> list[int]:
    """``n`` seeded object sizes, log-uniform between the bounds."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0 < min_bytes <= max_bytes:
        raise ValueError("need 0 < min_bytes <= max_bytes")
    rng = random.Random(seed)
    lo, hi = float(min_bytes), float(max_bytes)
    return [int(lo * (hi / lo) ** rng.random()) for _ in range(n)]


def access_trace(
    n_objects: int,
    n_ops: int,
    seed: int = 0,
    hot_fraction: float = 0.2,
    hot_weight: float = 0.8,
) -> list[int]:
    """Seeded object-id access sequence with a popularity hotspot.

    ``hot_fraction`` of the ids receive ``hot_weight`` of the accesses —
    the 80/20 shape out-of-core caching lives on.  With ``hot_weight``
    equal to ``hot_fraction`` the trace is uniform.
    """
    if n_objects < 1:
        raise ValueError("n_objects must be >= 1")
    if not 0.0 < hot_fraction <= 1.0 or not 0.0 <= hot_weight <= 1.0:
        raise ValueError("hot_fraction in (0,1], hot_weight in [0,1]")
    rng = random.Random(seed)
    n_hot = max(1, int(n_objects * hot_fraction))
    trace: list[int] = []
    for _ in range(n_ops):
        if rng.random() < hot_weight:
            trace.append(rng.randrange(n_hot))
        else:
            trace.append(rng.randrange(n_objects))
    return trace


@dataclass
class WorkloadSpec:
    """Parameters of a message-storm workload (see :func:`run_storm`)."""

    n_actors: int = 12
    payload_bytes: int = 4096
    initial_pulses: int = 4
    hops: int = 6
    fanout: int = 2
    grow_every: int = 7  # every Nth hit an actor grows its payload
    grow_bytes: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_actors < 1:
            raise ValueError("n_actors must be >= 1")
        if self.initial_pulses < 0 or self.hops < 0 or self.fanout < 0:
            raise ValueError("initial_pulses/hops/fanout must be >= 0")
        if self.grow_every < 1:
            raise ValueError("grow_every must be >= 1")


class StormActor(MobileObject):
    """A mobile object that forwards pulses to seeded-random peers.

    Each delivered ``pulse`` bumps the hit counter, occasionally grows the
    payload (driving the resize/eviction paths), and re-posts the pulse to
    ``fanout`` peers chosen by a PRNG keyed on (seed, token) — where
    ``token`` names the pulse's position in the cascade tree.  Because the
    key never involves delivery order, the *final* application state (hits,
    forwarded counts, payload sizes) is a pure function of the spec, no
    matter how scheduling, eviction or even crash/restore reorder the
    deliveries.  Tests lean on exactly that: any two runs of the same spec
    must converge to the same state.
    """

    def __init__(self, ptr, payload_bytes: int, seed: int, grow_every: int,
                 grow_bytes: int) -> None:
        super().__init__(ptr)
        self.payload = bytes(payload_bytes)
        self.seed = seed
        self.grow_every = grow_every
        self.grow_bytes = grow_bytes
        self.hits = 0
        self.forwarded = 0
        self.peers: list = []

    @handler
    def meet(self, ctx, peers) -> None:
        self.peers = [p for p in peers if p.oid != self.oid]

    @handler
    def pulse(self, ctx, hops: int, fanout: int, token: str = "p") -> None:
        self.hits += 1
        if self.grow_every and self.hits % self.grow_every == 0:
            self.payload += bytes(self.grow_bytes)
        if hops <= 0 or fanout <= 0 or not self.peers:
            return
        rng = random.Random(f"{self.seed}:{self.oid}:{token}")
        for i in range(fanout):
            target = self.peers[rng.randrange(len(self.peers))]
            ctx.post(target, "pulse", hops - 1, fanout, f"{token}.{i}")
            self.forwarded += 1


class DeltaStormActor(StormActor):
    """A storm actor whose payload spills through the delta data plane.

    Identical cascade semantics, but the grow-only ``payload`` is declared
    append-mostly via the ``bytes-append`` codec, so re-spills after a
    growth hit emit delta segments (and, with compression on, compressed
    frames).  Chaos cases use it to drive the delta/compaction/repair
    machinery under injected faults while still asserting bit-exact
    convergence with a fault-free reference.
    """

    serializer = get_codec("bytes-append")


def run_storm(runtime: "MRTS", spec: WorkloadSpec) -> list["MobilePointer"]:
    """Run one storm workload to quiescence; returns the actor pointers.

    Actors are placed round-robin across the cluster's nodes, introduced
    to each other, then ``initial_pulses`` cascades are launched.  The
    caller inspects final state through ``runtime.get_object``.
    """
    n_nodes = len(runtime.nodes)
    actors = [
        runtime.create_object(
            StormActor,
            spec.payload_bytes,
            spec.seed,
            spec.grow_every,
            spec.grow_bytes,
            node=i % n_nodes,
        )
        for i in range(spec.n_actors)
    ]
    for ptr in actors:
        runtime.post(ptr, "meet", actors)
    rng = random.Random(spec.seed)
    for k in range(spec.initial_pulses):
        runtime.post(actors[rng.randrange(len(actors))], "pulse",
                     spec.hops, spec.fanout, f"p{k}")
    runtime.run()
    return actors
