"""Service-mode test harness: fixtures, job scripts, the concurrent soak.

The soak's oracle is exact, and it is worth spelling out why.  A mesh
job's final point set is a pure function of its
:class:`~repro.serve.meshjob.JobSpec`: every job runs on its own MRTS
with its own deterministic virtual schedule, so server concurrency,
thread interleaving and admission queueing decide *when* a job runs but
never *what* it computes.  The soak therefore compares each served
job's ``state_digest`` (sha256 over the canonical final-state witness)
against a solo run of the identical spec — equality means the
multi-tenant path changed nothing, byte for byte.  Invariant checks ride
along: every runner records :func:`~repro.testing.invariants.
check_runtime` violations at every phase boundary, and the soak requires
zero across all jobs.

Pieces:

* :class:`ServiceFixture` — an in-process :class:`~repro.serve.server.
  MeshServer` on an ephemeral port, context-managed, with a
  :meth:`client` factory; what the protocol/fuzz tests build on;
* :func:`soak_jobs` — the deterministic job script: a seeded mix of
  small UPDR/NUPDR/PCDM jobs across N tenants (same seed, same script);
* :func:`run_soak` — submit the script from one thread per tenant
  through real sockets, wait, and return a :class:`SoakReport` with the
  per-job verdicts and throughput/latency numbers.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.admission import AdmissionPolicy
from repro.serve.client import ServiceClient
from repro.serve.meshjob import JobSpec, MeshJobRunner
from repro.serve.server import MeshServer

__all__ = ["ServiceFixture", "SoakReport", "soak_jobs", "run_soak",
           "solo_digest"]


class ServiceFixture:
    """An in-process service on an ephemeral port.

    ``with ServiceFixture() as svc: svc.client().ping()`` — keyword
    arguments go to :class:`MeshServer` (and through it to the
    :class:`~repro.serve.jobs.JobManager`).
    """

    def __init__(self, **server_kwargs) -> None:
        self._kwargs = dict(server_kwargs)
        self.server: Optional[MeshServer] = None

    def __enter__(self) -> "ServiceFixture":
        self.server = MeshServer(**self._kwargs).start()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.server is not None:
            self.server.stop()
            self.server = None

    @property
    def manager(self):
        return self.server.manager

    def client(self, timeout: float = 30.0) -> ServiceClient:
        host, port = self.server.address
        return ServiceClient(host, port, timeout=timeout)


# Small-job templates the script draws from: each finishes in well under
# a second solo, and the UPDR cells at 48 KiB/node genuinely spill.
_TEMPLATES = (
    dict(method="updr", geometry="unit_square", h=0.18, nx=2, ny=2,
         memory_bytes=256 * 1024),
    dict(method="updr", geometry="circle", h=0.25, nx=2, ny=2,
         memory_bytes=64 * 1024),
    dict(method="nupdr", geometry="unit_square", h=0.22, granularity=4.0,
         memory_bytes=256 * 1024),
    dict(method="pcdm", geometry="unit_square", h=0.18, n_parts=2,
         memory_bytes=256 * 1024),
    dict(method="pcdm", geometry="circle", h=0.3, n_parts=2,
         memory_bytes=256 * 1024),
    dict(method="updr", geometry="unit_square", h=0.09, nx=3, ny=3,
         memory_bytes=48 * 1024),   # the spill-heavy cell
)


def soak_jobs(n_tenants: int, n_jobs: int, seed: int = 0) -> list[dict]:
    """The deterministic job script: ``n_jobs`` specs across tenants.

    Tenants are assigned round-robin (every tenant gets work) and the
    template draw is seeded — the same (n_tenants, n_jobs, seed) always
    yields the same script, so a failing soak replays bit-for-bit.
    """
    rng = random.Random(seed)
    jobs = []
    for i in range(n_jobs):
        body = dict(rng.choice(_TEMPLATES))
        body["tenant"] = f"tenant-{i % n_tenants}"
        body["seed"] = seed
        jobs.append(body)
    return jobs


_REFERENCE_CACHE: dict[tuple, str] = {}


def solo_digest(body: dict) -> str:
    """The solo-run reference digest for one job body (cached by spec)."""
    ref = dict(body, tenant="reference")
    key = tuple(sorted(ref.items()))
    if key not in _REFERENCE_CACHE:
        runner = MeshJobRunner(JobSpec(**ref))
        runner.run_to_completion()
        if runner.violations:
            raise AssertionError(
                f"solo reference violated invariants: {runner.violations}")
        _REFERENCE_CACHE[key] = runner.state_digest()
    return _REFERENCE_CACHE[key]


@dataclass
class SoakReport:
    """Verdict of one concurrent soak."""

    n_tenants: int
    n_jobs: int
    seed: int
    finished: int = 0
    queued_peak: int = 0
    jobs_per_sec: float = 0.0
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    jobs: list = field(default_factory=list)     # per-job verdict dicts
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        status = "ok" if self.ok else f"FAIL ({len(self.problems)})"
        line = (
            f"soak {self.n_tenants}x{self.n_jobs} seed={self.seed} "
            f"{status}: {self.finished} finished, "
            f"{self.jobs_per_sec:.1f} jobs/s, "
            f"p99 {self.p99_latency_s * 1000:.0f} ms"
        )
        for problem in self.problems:
            line += f"\n    - {problem}"
        return line


def _percentile(values: list, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run_soak(
    n_tenants: int = 4,
    n_jobs: int = 16,
    seed: int = 0,
    workers: int = 4,
    policy: Optional[AdmissionPolicy] = None,
    timeout_s: float = 240.0,
) -> SoakReport:
    """N tenants × M jobs through real sockets; exact per-job oracles.

    One client thread per tenant submits that tenant's slice of the
    script and waits for each job; the policy defaults are sized so the
    script queues under pressure but rejects nothing (every job's
    verdict must be ``finished``).
    """
    script = soak_jobs(n_tenants, n_jobs, seed)
    policy = policy or AdmissionPolicy(
        soft_residency_bytes=4 * (1 << 20),
        hard_residency_bytes=8 * (1 << 20),
        tenant_quota_bytes=256 * (1 << 20),
    )
    report = SoakReport(n_tenants=n_tenants, n_jobs=n_jobs, seed=seed)
    lock = threading.Lock()

    with ServiceFixture(policy=policy, workers=workers) as svc:
        started = svc.manager.now()

        def tenant_thread(tenant_idx: int) -> None:
            mine = [b for i, b in enumerate(script)
                    if i % n_tenants == tenant_idx]
            try:
                with svc.client(timeout=timeout_s) as client:
                    submitted = [
                        (client.submit(body)["job_id"], body)
                        for body in mine
                    ]
                    for job_id, body in submitted:
                        status = client.wait(job_id, timeout=timeout_s)
                        verdict = {
                            "job_id": job_id,
                            "tenant": body["tenant"],
                            "method": body["method"],
                            "state": status["state"],
                            "latency_s": status["latency_s"],
                            "violations": status["invariant_violations"],
                            "digest_match": None,
                        }
                        if status["state"] == "finished":
                            result = client.result(job_id)
                            verdict["digest_match"] = (
                                result["state_digest"] == solo_digest(body))
                        with lock:
                            report.jobs.append(verdict)
            except Exception as exc:  # noqa: BLE001 - surface in the report
                with lock:
                    report.problems.append(
                        f"tenant {tenant_idx} client failed: "
                        f"{type(exc).__name__}: {exc}"
                    )

        threads = [
            threading.Thread(target=tenant_thread, args=(i,),
                             name=f"soak-tenant-{i}")
            for i in range(n_tenants)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout_s)
        elapsed = max(svc.manager.now() - started, 1e-9)
        stats = svc.manager.stats()

    report.jobs.sort(key=lambda v: v["job_id"])
    report.finished = sum(
        1 for v in report.jobs if v["state"] == "finished")
    latencies = [v["latency_s"] for v in report.jobs
                 if v["latency_s"] is not None]
    report.jobs_per_sec = report.finished / elapsed
    report.p50_latency_s = _percentile(latencies, 0.50)
    report.p99_latency_s = _percentile(latencies, 0.99)
    report.queued_peak = stats["admission"]["queued_jobs"]

    if len(report.jobs) != n_jobs:
        report.problems.append(
            f"expected {n_jobs} job verdicts, saw {len(report.jobs)}")
    for v in report.jobs:
        if v["state"] != "finished":
            report.problems.append(
                f"{v['job_id']} ({v['tenant']}) ended {v['state']!r}")
        elif v["digest_match"] is not True:
            report.problems.append(
                f"{v['job_id']} ({v['tenant']}, {v['method']}) final state "
                "diverged from its solo reference")
        if v["violations"]:
            report.problems.append(
                f"{v['job_id']} recorded {v['violations']} invariant "
                "violations at phase boundaries")
    return report
