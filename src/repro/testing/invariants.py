"""Executable cross-layer invariants of the MRTS runtime.

The four layers each keep their own bookkeeping of the same facts — where
an object is, how big it is, how many messages it owes.  Bugs show up as
*disagreement* between layers long before they show up as wrong meshes.
These checkers walk a live runtime at an event boundary and return every
disagreement they find as a human-readable violation string.

Invariants checked (``check_runtime``):

* **memory accounting** — each node's ``memory_used`` equals the sum of
  its resident objects' sizes; budget overruns are only tolerated when the
  OOC layer recorded them;
* **residency agreement** — the OOC layer and the control layer track the
  same object set; an object is spilled (``obj is None``) iff the OOC
  layer says non-resident, and spilled objects' bytes exist in storage;
* **directory truth** — the directory's authoritative location for every
  live object is exactly the node holding it, and no object lives on two
  nodes;
* **lock sanity** — lock counts are non-negative and, at quiescence, zero
  (every runtime-internal pin must have been released);
* **dirty consistency** — a dirty record is always resident (eviction
  either writes the divergence back or there was none), and a clean
  resident object has a storage copy backing the write-back it would skip;
* **quiescence** — at quiescence no messages are queued, no handlers are
  in flight, and the termination detector agrees.

``check_ooc_layer`` applies the memory/lock subset to a bare
:class:`~repro.core.ooc.OOCLayer` (unit tests).  ``check_dist`` applies
the same discipline to the distributed coordinator (shard map, replicated
directory, delivery ledger).  ``check_mesh`` validates
a :class:`~repro.mesh.Triangulation`: constrained-Delaunay conformity plus
positive areas and an optional minimum-angle floor.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.mesh.quality import triangle_angles, triangle_area
from repro.util.errors import MRTSError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ooc import OOCLayer
    from repro.core.runtime import MRTS
    from repro.mesh.triangulation import Triangulation

__all__ = [
    "InvariantViolation",
    "check_ooc_layer",
    "check_runtime",
    "check_dist",
    "check_mesh",
    "check_ghosts",
    "check_mesh3d",
    "assert_invariants",
]


class InvariantViolation(MRTSError):
    """A cross-layer invariant does not hold; carries all violations found."""

    def __init__(self, violations: list[str]) -> None:
        self.violations = violations
        preview = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(f"{len(violations)} invariant violation(s): {preview}{more}")


def check_ooc_layer(ooc: "OOCLayer", label: str = "ooc") -> list[str]:
    """Internal-consistency violations of one out-of-core layer."""
    problems: list[str] = []
    resident_bytes = sum(r.nbytes for r in ooc.table.values() if r.resident)
    if resident_bytes != ooc.memory_used:
        problems.append(
            f"{label}: memory_used={ooc.memory_used} but resident objects "
            f"sum to {resident_bytes}"
        )
    if ooc.memory_used > ooc.budget and ooc.overruns == 0:
        problems.append(
            f"{label}: over budget ({ooc.memory_used}/{ooc.budget}) "
            "with no recorded overrun"
        )
    if ooc.high_water < ooc.memory_used:
        problems.append(
            f"{label}: high_water={ooc.high_water} below "
            f"memory_used={ooc.memory_used}"
        )
    for oid, rec in ooc.table.items():
        if rec.nbytes < 0:
            problems.append(f"{label}: object {oid} has negative size")
        if rec.locked < 0:
            problems.append(f"{label}: object {oid} has negative lock count")
        if rec.locked > 0 and not rec.resident:
            problems.append(f"{label}: object {oid} locked but not resident")
        if rec.queued_messages < 0:
            problems.append(f"{label}: object {oid} negative queue length")
        if rec.dirty and not rec.resident:
            # A spilled object must have written back any divergence: a
            # dirty non-resident record means an update was lost (the
            # eviction path skipped a store it should have paid).
            problems.append(
                f"{label}: object {oid} dirty but not resident (lost update)"
            )
    return problems


def check_runtime(runtime: "MRTS") -> list[str]:
    """Cross-layer violations of a full runtime at an event boundary."""
    problems: list[str] = []
    quiescent = runtime.termination.quiescent
    seen: dict[int, int] = {}  # oid -> node actually holding it

    for nrt in runtime.nodes:
        label = f"node {nrt.rank}"
        problems.extend(check_ooc_layer(nrt.ooc, label))

        local_ids = set(nrt.locals)
        tracked_ids = set(nrt.ooc.table)
        for oid in local_ids - tracked_ids:
            problems.append(f"{label}: object {oid} local but untracked by OOC")
        for oid in tracked_ids - local_ids:
            problems.append(f"{label}: object {oid} tracked by OOC but not local")

        for oid, rec in nrt.locals.items():
            if oid in seen:
                problems.append(
                    f"object {oid} lives on both node {seen[oid]} and {nrt.rank}"
                )
            seen[oid] = nrt.rank
            resident = nrt.ooc.is_resident(oid)
            if resident and rec.obj is None:
                problems.append(
                    f"{label}: object {oid} marked resident but has no "
                    "in-core instance"
                )
            if (
                resident
                and oid in nrt.ooc.table
                and not nrt.ooc.table[oid].dirty
                and not nrt.storage.contains(oid)
            ):
                # Clean means "the storage copy is current" — so a copy
                # must exist; otherwise a clean eviction would skip the
                # store and the state would be unrecoverable.
                problems.append(
                    f"{label}: object {oid} marked clean but storage has "
                    "no copy to skip the write-back against"
                )
            if not resident:
                if rec.obj is not None:
                    problems.append(
                        f"{label}: object {oid} spilled by OOC but still in core"
                    )
                if not nrt.storage.contains(oid):
                    problems.append(
                        f"{label}: spilled object {oid} missing from storage"
                    )
            if rec.in_flight < 0:
                problems.append(f"{label}: object {oid} negative in_flight")
            if quiescent:
                if rec.queue:
                    problems.append(
                        f"{label}: object {oid} has {len(rec.queue)} queued "
                        "messages at quiescence"
                    )
                if rec.in_flight:
                    problems.append(
                        f"{label}: object {oid} has a handler in flight "
                        "at quiescence"
                    )
                if oid in nrt.ooc.table and nrt.ooc.table[oid].locked:
                    problems.append(
                        f"{label}: object {oid} still locked at quiescence"
                    )

    truth = runtime.directory.truth
    for oid, node in seen.items():
        if truth.get(oid) != node:
            problems.append(
                f"directory says object {oid} is on node {truth.get(oid)}, "
                f"actually on node {node}"
            )
    for oid in set(truth) - set(seen):
        problems.append(f"directory tracks object {oid} which lives nowhere")
    for oid in set(runtime._objects_by_oid) - set(seen):
        problems.append(f"pointer table has object {oid} which lives nowhere")

    if quiescent and runtime.termination.outstanding != 0:
        problems.append(
            f"termination detector quiescent with "
            f"{runtime.termination.outstanding} outstanding items"
        )
    return problems


def check_dist(runtime) -> list[str]:
    """Cross-process invariants of a :class:`~repro.dist.DistRuntime`.

    Checked at phase boundaries of the dist chaos cells: the shard map,
    the replicated directory and the delivery machinery must agree, and a
    quiescent coordinator must owe nothing to anyone.

    * **shard truth** — every directory entry's home is a live ring
      member, and the per-worker in-flight ledger sums to the in-flight
      table;
    * **replica presence** — every entry has packed state and a class
      reference the coordinator can resolve (it must be able to re-home
      the object at any moment);
    * **delivery sanity** — every outstanding message id is in flight,
      aimed at its object's current home;
    * **quiescence** — when the runtime reports quiescent, no message is
      pending or in flight.
    """
    problems: list[str] = []
    members = runtime.ring.members
    for oid, entry in runtime.directory.items():
        if entry.home not in members:
            problems.append(
                f"object {oid} homed on rank {entry.home}, not in the ring"
            )
        elif not runtime.workers[entry.home].alive:
            problems.append(
                f"object {oid} homed on dead worker {entry.home}"
            )
        if not entry.state:
            problems.append(f"object {oid} has an empty directory replica")
        try:
            from repro.dist.store import resolve_class

            resolve_class(entry.cls_path)
        except Exception as exc:
            problems.append(
                f"object {oid} class {entry.cls_path!r} unresolvable: {exc}"
            )
    ledger = sum(runtime._per_worker_inflight.values())
    if ledger != len(runtime._inflight):
        problems.append(
            f"per-worker in-flight ledger says {ledger}, "
            f"in-flight table has {len(runtime._inflight)}"
        )
    for oid, msg_id in runtime._outstanding.items():
        if msg_id is None:
            continue
        rec = runtime._inflight.get(msg_id)
        if rec is None:
            problems.append(
                f"object {oid} outstanding msg {msg_id} is not in flight"
            )
        elif rec.worker != runtime.directory[oid].home:
            problems.append(
                f"object {oid} msg {msg_id} aimed at rank {rec.worker} "
                f"but homed on {runtime.directory[oid].home}"
            )
    if runtime._quiescent():
        stuck = [
            oid for oid, msg_id in runtime._outstanding.items()
            if msg_id is not None
        ]
        if stuck:
            problems.append(
                f"quiescent but objects {stuck} still show an "
                "outstanding message"
            )
    return problems


def check_ghosts(runtime: "MRTS", pointers) -> list[str]:
    """Ghost-freshness violations at a phase boundary (empty = fresh).

    The contract of :mod:`repro.pumg.ghost`: at every phase boundary —
    after the coordinator's ack barrier, or at quiescence — every ghost
    copy a subscriber holds equals the strip its owner would compute
    from its *current* points.  ``pointers`` are the region pointers of
    one ghost-mode PUMG run; regions not in ghost mode are skipped.
    """
    problems: list[str] = []
    regions = {}
    for ptr in pointers:
        obj = runtime.get_object(ptr)
        regions[obj.region_id] = obj
    for rid, owner in regions.items():
        if not getattr(owner, "ghost_sync", False):
            continue
        strips = owner.ghost_strips()
        for nid in owner.neighbor_ids:
            sub = regions.get(nid)
            if sub is None:
                problems.append(
                    f"region {rid}: neighbor {nid} not among the pointers"
                )
                continue
            copy = sub.ghosts.copies.get(rid)
            want = sorted(strips.get(nid, []))
            have = sorted(copy.points) if copy is not None else None
            if have is None:
                if want:
                    problems.append(
                        f"region {nid} has no ghost copy of owner {rid} "
                        f"({len(want)} strip points expected)"
                    )
            elif have != want:
                problems.append(
                    f"region {nid}'s ghost of owner {rid} is stale: "
                    f"{len(have)} points held, {len(want)} expected"
                )
    return problems


def check_mesh3d(patches, bounds: Optional[tuple] = None) -> list[str]:
    """Invariant violations of a 3D prism-patch set (empty = valid).

    * every cell has positive volume and finite quality;
    * each patch's cells exactly tile its box (volume conservation under
      bisection — and, with ``bounds``, the patches tile the domain);
    * 2:1 balance holds across every shared patch face.
    """
    from repro.mesh3d.objects import BALANCE_RATIO
    from repro.mesh3d.prism import prism_quality, prism_volume

    problems: list[str] = []
    by_id = {p.patch_id: p for p in patches}
    total = 0.0
    for patch in patches:
        vol = 0.0
        for cell in patch.cells:
            v = prism_volume(cell)
            if not v > 0.0:
                problems.append(
                    f"patch {patch.patch_id}: cell with non-positive "
                    f"volume {v}"
                )
            if not math.isfinite(prism_quality(cell)):
                problems.append(
                    f"patch {patch.patch_id}: degenerate cell "
                    f"(infinite quality)"
                )
            vol += v
        x0, y0, z0, x1, y1, z1 = patch.box3
        box_vol = (x1 - x0) * (y1 - y0) * (z1 - z0)
        if abs(vol - box_vol) > 1e-9 * max(box_vol, 1.0):
            problems.append(
                f"patch {patch.patch_id}: cells sum to volume {vol}, "
                f"box has {box_vol} (bisection lost or duplicated cells)"
            )
        total += vol
        for rid in patch.neighbor_ids:
            other = by_id.get(rid)
            if other is None:
                continue
            mine = patch.face_min_size(rid)
            theirs = other.face_min_size(patch.patch_id)
            if math.isinf(mine) or math.isinf(theirs):
                continue
            if mine > BALANCE_RATIO * theirs + 1e-9:
                problems.append(
                    f"face {patch.patch_id}|{rid}: 2:1 balance violated "
                    f"({mine:.4g} vs {theirs:.4g})"
                )
    if bounds is not None:
        x0, y0, z0, x1, y1, z1 = bounds
        domain = (x1 - x0) * (y1 - y0) * (z1 - z0)
        if abs(total - domain) > 1e-9 * max(domain, 1.0):
            problems.append(
                f"patches sum to volume {total}, domain has {domain}"
            )
    return problems


def check_mesh(
    mesh: "Triangulation", min_angle_deg: Optional[float] = None
) -> list[str]:
    """Conformity violations of a triangulation (empty = valid)."""
    problems = list(mesh.check_delaunay())
    for tri in mesh.triangles():
        coords = mesh.coords(tri)
        area = triangle_area(*coords)
        if not area > 0.0:
            problems.append(f"triangle {tri} has non-positive area {area}")
            continue
        if min_angle_deg is not None:
            smallest = math.degrees(min(triangle_angles(*coords)))
            if smallest < min_angle_deg:
                problems.append(
                    f"triangle {tri} angle {smallest:.2f} deg below "
                    f"floor {min_angle_deg}"
                )
    return problems


def assert_invariants(subject, **kwargs) -> None:
    """Raise :class:`InvariantViolation` if ``subject`` violates invariants.

    Dispatches on type: an :class:`MRTS` runtime, an :class:`OOCLayer`, or
    a :class:`Triangulation` (kwargs forwarded to the specific checker).
    """
    from repro.core.ooc import OOCLayer
    from repro.core.runtime import MRTS
    from repro.mesh.triangulation import Triangulation

    if isinstance(subject, MRTS):
        problems = check_runtime(subject, **kwargs)
    elif isinstance(subject, OOCLayer):
        problems = check_ooc_layer(subject, **kwargs)
    elif isinstance(subject, Triangulation):
        problems = check_mesh(subject, **kwargs)
    else:
        raise TypeError(f"no invariant checker for {type(subject).__name__}")
    if problems:
        raise InvariantViolation(problems)
