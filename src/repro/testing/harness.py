"""An invariant-checked runtime factory plus the operational selftest.

:class:`RuntimeHarness` builds an :class:`~repro.core.runtime.MRTS` whose
per-node storage is optionally wrapped in a
:class:`~repro.testing.faults.FaultyBackend`, runs workloads against it,
and re-checks the cross-layer invariants at every event boundary.  Tests
use it to get a pressured-but-verified runtime in two lines; the CLI's
``selftest`` subcommand uses it to smoke-check an installation the way
``fsck`` checks a filesystem.

Determinism note: the harness defaults to :class:`FixedCostModel` (every
handler charges the same virtual compute time) instead of measured wall
time, so identical seeds produce identical virtual schedules — the
property the determinism tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import MRTSConfig
from repro.core.runtime import MRTS, CostModel
from repro.core.stats import RunStats
from repro.core.storage import FileBackend, MemoryBackend, StorageBackend
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing.faults import FaultPlan, FaultyBackend
from repro.testing.invariants import InvariantViolation, check_runtime
from repro.testing.workloads import WorkloadSpec, run_storm

__all__ = ["FixedCostModel", "HarnessReport", "RuntimeHarness", "selftest"]


class FixedCostModel(CostModel):
    """Charge a constant virtual compute cost per handler invocation."""

    def __init__(self, cost: float = 1e-4) -> None:
        if cost < 0:
            raise ValueError("cost must be >= 0")
        self.cost = cost

    def handler_cost(self, obj, handler_name, msg) -> Optional[float]:
        return self.cost


@dataclass
class HarnessReport:
    """Outcome of one checked run: headline counters plus violations."""

    label: str
    total_time: float
    messages: int
    evictions: int
    overruns: int
    violations: list[str] = field(default_factory=list)
    pack_time: float = 0.0
    unpack_time: float = 0.0
    stored_ratio: float = 1.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "ok" if self.ok else f"FAIL ({len(self.violations)})"
        line = (
            f"{self.label:<28} {status:<10} t={self.total_time:.4f}s "
            f"msgs={self.messages} evictions={self.evictions} "
            f"overruns={self.overruns} "
            f"pack={self.pack_time:.3f}s+{self.unpack_time:.3f}s "
            f"stored/raw={self.stored_ratio:.2f}"
        )
        if self.violations:
            line += "".join(f"\n    - {v}" for v in self.violations)
        return line


class RuntimeHarness:
    """Build a runtime with instrumented storage and checked invariants."""

    def __init__(
        self,
        n_nodes: int = 2,
        cores: int = 1,
        memory_bytes: int = 1 << 20,
        config: Optional[MRTSConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        spill_dir: Optional[str] = None,
        cost: float = 1e-4,
        io_depth: int = 2,
    ) -> None:
        self.fault_backends: dict[int, FaultyBackend] = {}
        self._spill_dir = spill_dir
        self._fault_plan = fault_plan
        self.runtime = MRTS(
            ClusterSpec(
                n_nodes=n_nodes,
                node=NodeSpec(cores=cores, memory_bytes=memory_bytes),
            ),
            config=config,
            storage_factory=self._make_backend,
            cost_model=FixedCostModel(cost),
            io_depth=io_depth,
        )

    def _make_backend(self, rank: int) -> StorageBackend:
        inner: StorageBackend
        if self._spill_dir is not None:
            inner = FileBackend(f"{self._spill_dir}/node-{rank}")
        else:
            inner = MemoryBackend()
        if self._fault_plan is None:
            return inner
        # One independent injector per node, offset seeds so nodes don't
        # fail in lockstep.
        from dataclasses import replace

        plan = replace(self._fault_plan, seed=self._fault_plan.seed + rank)
        backend = FaultyBackend(inner, plan)
        self.fault_backends[rank] = backend
        return backend

    # ------------------------------------------------------------ observing
    @property
    def bus(self):
        """The runtime's observability event bus (:class:`EventBus`)."""
        return self.runtime.bus

    def subscribe(self, **kwargs):
        """Subscribe to the runtime's event bus; see :meth:`EventBus.subscribe`.

        Convenience so tests can write ``sub = harness.subscribe(kinds=...)``
        before driving a workload.
        """
        return self.runtime.bus.subscribe(**kwargs)

    # ------------------------------------------------------------- execution
    def check(self) -> list[str]:
        """Current invariant violations (empty = healthy)."""
        return check_runtime(self.runtime)

    def run_and_check(self) -> RunStats:
        """Run to quiescence, then raise on any invariant violation."""
        stats = self.runtime.run()
        problems = self.check()
        if problems:
            raise InvariantViolation(problems)
        return stats

    def run_storm(self, spec: Optional[WorkloadSpec] = None):
        """Drive a storm workload and invariant-check the aftermath."""
        spec = spec or WorkloadSpec()
        actors = run_storm(self.runtime, spec)
        problems = self.check()
        if problems:
            raise InvariantViolation(problems)
        return actors

    def report(self, label: str = "run") -> HarnessReport:
        stats = self.runtime.stats
        return HarnessReport(
            label=label,
            total_time=stats.total_time,
            messages=stats.messages_sent,
            evictions=sum(n.ooc.evictions for n in self.runtime.nodes),
            overruns=sum(n.ooc.overruns for n in self.runtime.nodes),
            violations=self.check(),
            pack_time=stats.pack_time,
            unpack_time=stats.unpack_time,
            stored_ratio=stats.stored_ratio,
        )


def selftest(seed: int = 0) -> list[HarnessReport]:
    """Smoke-check the runtime under every swap scheme and directory policy.

    Runs one seeded storm per configuration on a deliberately tiny memory
    budget (so eviction, spill and reload all trigger) and reports the
    invariant-check outcome of each.  Used by ``mrts-bench selftest``.
    """
    reports: list[HarnessReport] = []
    spec = WorkloadSpec(n_actors=10, payload_bytes=4096, initial_pulses=3,
                        hops=5, fanout=2, seed=seed)
    for scheme in MRTSConfig.VALID_SCHEMES:
        for policy in MRTSConfig.VALID_DIRECTORY:
            label = f"storm[{scheme}/{policy}]"
            harness = RuntimeHarness(
                n_nodes=3,
                memory_bytes=20 * 1024,
                config=MRTSConfig(swap_scheme=scheme, directory_policy=policy),
            )
            try:
                harness.run_storm(spec)
                reports.append(harness.report(label))
            except InvariantViolation as exc:
                report = harness.report(label)
                report.violations = exc.violations
                reports.append(report)
    return reports
