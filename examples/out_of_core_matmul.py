#!/usr/bin/env python3
"""Out-of-core block matrix multiply on the MRTS.

The paper positions the MRTS as a general runtime for "large irregular and
adaptive problems", with mesh generation as the stress test.  This example
shows a different workload adopting the same API: C = A @ B by blocks,
where each block is a mobile object and node memory holds only a fraction
of the matrices — the out-of-core layer streams blocks through RAM while
the computing layer does real numpy work.

Run:  python examples/out_of_core_matmul.py
"""

import numpy as np

from repro.core import MobileObject, MRTS, handler
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec

N_BLOCKS = 4          # block grid side: matrices are (4*B) x (4*B)
B = 48                # block size


class MatrixBlock(MobileObject):
    """One dense block of A, B, or C."""

    def __init__(self, pointer, data):
        super().__init__(pointer)
        self.data = np.asarray(data, dtype=np.float64)

    def nbytes(self):
        return self.data.nbytes + 512

    @handler
    def multiply_into(self, ctx, other, accumulator):
        """Compute self @ other's data and send the product to C's block.

        ``other`` must be co-resident (the driver posts a multicast that
        collects the pair); the partial product travels as a message.
        """
        rhs = ctx.peek(other)
        assert rhs is not None, "multicast must have collected the operand"
        partial = self.data @ rhs.data
        ctx.post(accumulator, "accumulate", partial)

    @handler
    def accumulate(self, ctx, partial):
        self.data = self.data + partial
        self.mark_dirty()


def main():
    rng = np.random.default_rng(42)
    a_full = rng.standard_normal((N_BLOCKS * B, N_BLOCKS * B))
    b_full = rng.standard_normal((N_BLOCKS * B, N_BLOCKS * B))

    # Node memory ~ 6 blocks; the three matrices total 48 blocks.
    block_bytes = B * B * 8
    cluster = ClusterSpec(
        n_nodes=2,
        node=NodeSpec(cores=2, memory_bytes=int(6.5 * block_bytes)),
    )
    rt = MRTS(cluster)

    def blocks_of(full, tag):
        grid = {}
        for i in range(N_BLOCKS):
            for j in range(N_BLOCKS):
                data = full[i * B:(i + 1) * B, j * B:(j + 1) * B]
                node = (i * N_BLOCKS + j) % 2
                grid[i, j] = rt.create_object(MatrixBlock, data, node=node)
        return grid

    a = blocks_of(a_full, "A")
    b = blocks_of(b_full, "B")
    c = blocks_of(np.zeros_like(a_full), "C")

    # Classic blocked SUMMA-ish schedule: for each (i, j, k), collect
    # A[i,k] with B[k,j] and accumulate into C[i,j].
    class Driver(MobileObject):
        @handler
        def go(self, ctx, a, b, c):
            for i in range(N_BLOCKS):
                for j in range(N_BLOCKS):
                    for k in range(N_BLOCKS):
                        ctx.post_multicast(
                            [a[i, k], b[k, j]], "multiply_into", 1,
                            b[k, j], c[i, j],
                        )

    driver = rt.create_object(Driver, node=0)
    rt.post(driver, "go", a, b, c)
    stats = rt.run()

    result = np.block([
        [rt.get_object(c[i, j]).data for j in range(N_BLOCKS)]
        for i in range(N_BLOCKS)
    ])
    expected = a_full @ b_full
    max_err = float(np.max(np.abs(result - expected)))
    print(f"matrix size  : {N_BLOCKS * B} x {N_BLOCKS * B} in {N_BLOCKS**2} blocks/matrix")
    print(f"node memory  : ~6.5 blocks of {block_bytes // 1024} KiB")
    print(f"spills/loads : {stats.objects_stored}/{stats.objects_loaded}")
    print(f"virtual time : {stats.total_time * 1e3:.1f} ms, messages {stats.messages_sent}")
    print(f"max |error|  : {max_err:.2e}")
    assert max_err < 1e-9
    assert stats.objects_stored > 0, "expected out-of-core streaming"
    print("out-of-core matmul OK")


if __name__ == "__main__":
    main()
