#!/usr/bin/env python3
"""Reproduce one paper-scale result end to end.

Runs the modeled OUPDR at 500M elements on the STEMS-like cluster (16 PEs,
32 GB aggregate — the problem needs ~135 GB, so the out-of-core layers are
fully engaged) and prints the Table IV-style breakdown, then compares
swap schemes on the same run.

Run:  python examples/paper_scale_run.py
"""

from repro.core import MRTSConfig
from repro.evalsim import run_updr_model
from repro.sim.cluster import stems_spec
from repro.util.fmt import human_bytes, human_time

SIZE = 500_000_000


def main():
    cluster = stems_spec(4)
    need = SIZE * 270
    print(
        f"problem: {SIZE / 1e6:.0f}M elements (~{human_bytes(need)}); "
        f"cluster: {cluster.n_nodes} nodes x {cluster.node.cores} PEs, "
        f"{human_bytes(cluster.total_memory)} aggregate RAM"
    )

    result = run_updr_model(SIZE, cluster, mrts=True)
    b = result.breakdown()
    print(f"\nOUPDR finished in {human_time(result.time)} (virtual)")
    print(f"  speed        : {result.speed / 1e3:.1f}k elements/s/PE")
    print(f"  computation  : {b['comp_pct']:.1f}%")
    print(f"  communication: {b['comm_pct']:.2f}%")
    print(f"  disk I/O     : {b['disk_pct']:.1f}%")
    print(f"  overlap      : {b['overlap_pct']:.1f}%  (paper: >50% when large)")
    print(
        f"  disk traffic : {result.stats.objects_stored} spills / "
        f"{result.stats.objects_loaded} loads, "
        f"{human_bytes(result.stats.bytes_to_disk)} written"
    )
    assert result.stats.objects_stored > 0

    print("\nswap-scheme sweep on the same run (paper §II.E):")
    for scheme in ("lru", "lfu", "mru", "mu", "lu"):
        config = MRTSConfig(swap_scheme=scheme, prefetch_depth=3)
        t = run_updr_model(SIZE, cluster, mrts=True, config=config).time
        print(f"  {scheme:4s}: {human_time(t)}")


if __name__ == "__main__":
    main()
