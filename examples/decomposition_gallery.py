#!/usr/bin/env python3
"""Figure 2 analogue: the three decompositions, rendered as ASCII art.

The paper's Figure 2 illustrates how parallel mesh generation decomposes
its domain.  This example prints, for the pipe cross-section geometry:

* the UPDR uniform block grid (with its 4-coloring),
* the NUPDR sizing-driven quadtree (leaf depth map),
* the PCDM coarse-mesh partition (which subdomain owns each cell).

Run:  python examples/decomposition_gallery.py
"""

from repro.geometry import pipe_cross_section
from repro.mesh.sizing import point_source_sizing
from repro.pumg import (
    block_decomposition,
    partition_coarse_mesh,
    quadtree_decomposition,
)

PIPE = pipe_cross_section(n=24)
GRID = 36  # raster resolution


def raster(classify):
    box = PIPE.bounding_box()
    lines = []
    for j in range(GRID - 1, -1, -1):
        row = []
        for i in range(GRID):
            x = box.xmin + (i + 0.5) / GRID * box.width
            y = box.ymin + (j + 0.5) / GRID * box.height
            row.append(classify((x, y)) if PIPE.contains((x, y)) else " ")
        lines.append("".join(row))
    return "\n".join(lines)


def main():
    print("== UPDR: 4x4 uniform blocks (digit = color; buffers overlap) ==")
    blocks = block_decomposition(PIPE.bounding_box(), 4, 4)

    def block_color(p):
        for b in blocks:
            if b.box.contains(p):
                return str(b.color)
        return "?"

    print(raster(block_color))

    print("\n== NUPDR: quadtree leaves (digit = depth; finer near the weld) ==")
    sizing = point_source_sizing([((1.0, 0.0), 0.04)], background=0.35)
    tree = quadtree_decomposition(
        PIPE.bounding_box(), sizing, granularity=3.0
    )
    print(raster(lambda p: str(min(tree.leaf_at(p).depth, 9))))
    print(f"   {tree.n_leaves} leaves, balanced: {tree.is_balanced()}")

    print("\n== PCDM: conforming subdomains (letter = owning part) ==")
    partition = partition_coarse_mesh(PIPE, 4)
    # Build a crude point->part classifier from the part seed clouds.
    def nearest_part(p):
        best, best_d = "?", float("inf")
        for part, seeds in enumerate(partition.part_seeds):
            for s in seeds:
                d = (s[0] - p[0]) ** 2 + (s[1] - p[1]) ** 2
                if d < best_d:
                    best_d = d
                    best = chr(ord("A") + part)
        return best

    print(raster(nearest_part))
    print(
        f"   {partition.n_parts} parts, "
        f"{len(partition.interfaces)} interface edges"
    )


if __name__ == "__main__":
    main()
