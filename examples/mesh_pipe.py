#!/usr/bin/env python3
"""Parallel meshing of the paper's pipe cross-section geometry.

Runs all three PUMG methods on the Table VII test geometry (an annulus
between two circles) and prints mesh statistics, then re-runs ONUPDR with
node memory small enough to force out-of-core execution.

Run:  python examples/mesh_pipe.py
"""

from repro.geometry import pipe_cross_section
from repro.mesh import MeshQuality
from repro.pumg import (
    ONUPDROptions,
    default_cluster,
    run_nupdr,
    run_pcdm,
    run_updr,
    sequential_mesh,
)

PIPE = pipe_cross_section(n=24)
H = 0.14  # target circumradius for the uniform methods
GRADED = ("point_source", [((1.0, 0.0), 0.05)], 0.3, 0.4)  # fine near a weld


def show(name, n_points, n_triangles, quality, stats):
    line = f"{name:28s} {n_points:5d} pts  {n_triangles:5d} tris"
    if quality is not None:
        line += f"  min angle {quality:5.1f} deg"
    line += (
        f"  | vtime {stats.total_time * 1e3:7.2f} ms"
        f"  msgs {stats.messages_sent:4d}"
        f"  spills {stats.objects_stored:3d}"
    )
    print(line)


def main():
    seq = sequential_mesh(PIPE, ("uniform", H))
    quality = MeshQuality.of(seq.triangles(), seq.coords)
    print(
        f"{'sequential (Ruppert)':28s} {seq.n_vertices:5d} pts  "
        f"{seq.n_triangles:5d} tris  min angle {quality.min_angle_deg:5.1f} deg"
    )

    updr = run_updr(PIPE, h=H, nx=3, ny=3)
    show("UPDR (3x3 blocks)", updr.n_points, updr.n_triangles,
         updr.quality.min_angle_deg, updr.stats)

    nupdr = run_nupdr(PIPE, GRADED, granularity=5.0)
    show(
        f"NUPDR ({nupdr.extras['n_leaves']} quadtree leaves)",
        nupdr.n_points, nupdr.n_triangles,
        nupdr.quality.min_angle_deg, nupdr.stats,
    )

    pcdm = run_pcdm(PIPE, h=H, n_parts=4)
    show("PCDM (4 subdomains)", pcdm.n_points, pcdm.n_triangles,
         pcdm.extras["min_angle_deg"], pcdm.stats)
    print(
        f"    PCDM split messages: {pcdm.extras['splits_sent']} sent, "
        f"{pcdm.extras['splits_received']} applied remotely"
    )

    # Out-of-core ONUPDR: shrink memory until leaves must spill.
    ooc = run_nupdr(
        PIPE, GRADED, granularity=5.0,
        options=ONUPDROptions(multicast=True),
        cluster=default_cluster(n_nodes=2, cores=1, memory_bytes=80_000),
    )
    show("ONUPDR out-of-core+mcast", ooc.n_points, ooc.n_triangles,
         ooc.quality.min_angle_deg, ooc.stats)
    assert ooc.stats.objects_stored > 0, "expected out-of-core spills"
    print("\npipe meshing OK")


if __name__ == "__main__":
    main()
