#!/usr/bin/env python3
"""The paper's §I motivating example: out-of-core beats the queue.

A PCDM mesh of 238M elements needs ~64 GB of memory.  In-core that means
requesting 32 nodes (2 GB each) and waiting in the batch queue behind
everyone else who wants a big slice of the machine; out-of-core the same
mesh runs on 16 nodes in ~2.4x the time — but wide requests wait so much
longer that the out-of-core job *returns results sooner*.

This example simulates the batch queue (Figure 1) and prints the wait
profile plus the end-to-end turnaround comparison.

Run:  python examples/cluster_turnaround.py
"""

from repro.sim.scheduler import (
    SchedulerSim,
    median_wait_by_width,
    synthetic_job_mix,
)

IN_CORE_NODES, IN_CORE_RUN_S = 32, 310.0     # paper: 310 s on 32 nodes
OOC_NODES, OOC_RUN_S = 16, 731.0             # paper: 731 s on 16 nodes


def main():
    print("simulating a 128-node shared cluster (EASY backfill, load 0.6)...")
    jobs = synthetic_job_mix(n_jobs=3000, n_nodes=128, load=0.6, seed=11)
    SchedulerSim(n_nodes=128, discipline="backfill").run(jobs)
    waits = median_wait_by_width(jobs)

    print("\nFigure 1 — typical queue wait by requested width:")
    for width, wait in sorted(waits.items()):
        bar = "#" * min(int(wait / 300), 60)
        print(f"  {width:4d} nodes  {wait / 60:7.1f} min  {bar}")

    def wait_for(width):
        candidates = [w for w in waits if w >= width]
        return waits[min(candidates)] if candidates else max(waits.values())

    print("\n§I turnaround comparison (queue wait + run time):")
    rows = [
        ("in-core, 32 nodes", wait_for(IN_CORE_NODES), IN_CORE_RUN_S),
        ("out-of-core, 16 nodes", wait_for(OOC_NODES), OOC_RUN_S),
    ]
    totals = {}
    for label, wait, run in rows:
        total = wait + run
        totals[label] = total
        print(
            f"  {label:24s} wait {wait / 60:6.1f} min + run {run / 60:5.1f} min"
            f" = {total / 60:6.1f} min"
        )
    winner = min(totals, key=totals.get)
    print(f"\n=> {winner} returns results first, exactly as the paper argues.")
    assert winner.startswith("out-of-core")


if __name__ == "__main__":
    main()
