#!/usr/bin/env python3
"""Automatic recovery: a supervised run survives storage failures.

The paper's conclusion: "check and restore functionality for fault
tolerance can be implemented with little effort on top of the out-of-core
subsystem".  The manual half (checkpoint/restore between phases) is one
call each; this example shows the *closed loop* — a
:class:`~repro.core.recovery.RecoveryPolicy` owns the runtime, snapshots
it at phase boundaries, and when the storage medium misbehaves:

* transient faults are absorbed by the retry/backoff layer (counted in
  ``RunStats.storage_retries``) and the application never notices;
* a fail-stop fault kills the run mid-phase — the supervisor rebuilds a
  fresh runtime from the latest snapshot, replays the work posted since,
  and the final result is identical to an uninterrupted run.

Run:  python examples/fault_tolerance.py
"""

from dataclasses import replace

from repro.core import MobileObject, MRTS, handler
from repro.core.recovery import RecoveryPolicy
from repro.core.storage import MemoryBackend
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing.faults import FaultPlan, FaultyBackend


class Cell(MobileObject):
    """One cell of a toy iterative stencil over a ring of mobile objects.

    The ballast makes cells big enough that the squeezed memory budget
    forces constant spill traffic — exactly where storage faults bite.
    """

    def __init__(self, pointer, index, value=0.0, ballast=16 * 1024):
        super().__init__(pointer)
        self.index = index
        self.value = float(value)
        self.neighbors = []
        self.ballast = bytes(ballast)
        self.incoming = 0.0

    @handler
    def wire(self, ctx, neighbors):
        self.neighbors = list(neighbors)

    @handler
    def exchange(self, ctx):
        for nbr in self.neighbors:
            ctx.post(nbr, "absorb", self.value / (2 * len(self.neighbors)))

    @handler
    def absorb(self, ctx, amount):
        # Accumulate only: addition commutes, so the result is independent
        # of message ordering (and therefore of crash/restore timing).
        self.incoming += amount

    @handler
    def commit(self, ctx):
        self.value = self.value / 2 + self.incoming
        self.incoming = 0.0


N_CELLS = 8
PHASES = 4


def make_supervisor(plan=None):
    """A supervised stencil runtime; ``plan`` injects storage faults.

    The factory heals the medium on rebuilds (the failed disk was
    replaced): incarnation 0 gets the fault plan, later ones run clean.
    """
    incarnation = [0]

    def factory(config=None):
        i = incarnation[0]
        incarnation[0] += 1

        def make_backend(rank):
            backend = MemoryBackend()
            if plan is not None and i == 0:
                backend = FaultyBackend(
                    backend, replace(plan, seed=plan.seed + rank)
                )
            return backend

        return MRTS(
            ClusterSpec(n_nodes=2, node=NodeSpec(cores=2,
                                                 memory_bytes=48 * 1024)),
            config=config,
            storage_factory=make_backend,
        )

    def build(rt):
        ptrs = [
            rt.create_object(Cell, k, 100.0 if k == 0 else 0.0, node=k % 2)
            for k in range(N_CELLS)
        ]
        for k, p in enumerate(ptrs):
            rt.post(p, "wire",
                    [ptrs[(k - 1) % N_CELLS], ptrs[(k + 1) % N_CELLS]])
        return ptrs

    return RecoveryPolicy(factory, build=build, interval=30,
                          class_map={"Cell": Cell})


def run_phases(sup):
    """All posts go through the supervisor so they land in the replay log:
    a restart mid-phase re-posts them against the restored snapshot."""
    sup.run()  # wiring
    ptrs = [sup.pointers[oid] for oid in sorted(sup.pointers)]
    for _ in range(PHASES):
        for p in ptrs:
            sup.post(p, "exchange")
        sup.run()
        for p in ptrs:
            sup.post(p, "commit")
        sup.run()
    return [round(sup.get_object(p).value, 6) for p in ptrs]


def main():
    # Reference: same workload on a healthy medium.
    expected = run_phases(make_supervisor())
    print("uninterrupted result:  ", expected)

    # Act 1 — a flaky medium (transient faults on 1 in 8 stores/loads).
    # The retry layer absorbs every one; no restart is ever needed.
    flaky = make_supervisor(
        FaultPlan(store_fail_rate=0.125, load_fail_rate=0.125, seed=11)
    )
    result = run_phases(flaky)
    print("flaky-medium result:   ", result)
    print(f"  retries={flaky.runtime.stats.storage_retries} "
          f"restarts={flaky.restarts}")
    assert result == expected
    assert flaky.runtime.stats.storage_retries > 0 and flaky.restarts == 0

    # Act 2 — the medium fail-stops on its 25th store, killing the run
    # mid-phase.  The supervisor restores the latest snapshot into a
    # fresh runtime, replays the posts made since, and carries on.
    failstop = make_supervisor(
        FaultPlan(fail_store_at=25, fail_stop=True, seed=7)
    )
    result = run_phases(failstop)
    print("fail-stop result:      ", result)
    print(f"  restarts={failstop.restarts} "
          f"snapshots={len(failstop.checkpointer.snapshots)}")
    for event in failstop.events:
        print("   .", event)
    assert result == expected, "recovery must be transparent to the result"
    assert failstop.restarts >= 1, "the fail-stop should have forced a restart"

    print("fault tolerance OK: both runs identical to the uninterrupted run")


if __name__ == "__main__":
    main()
