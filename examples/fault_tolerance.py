#!/usr/bin/env python3
"""Checkpoint/restore on top of the out-of-core subsystem.

The paper's conclusion: "check and restore functionality for fault
tolerance can be implemented with little effort on top of the out-of-core
subsystem".  This example runs a phased computation, snapshots between
phases, simulates a crash, and resumes from the snapshot on a brand-new
runtime — finishing with exactly the result the uninterrupted run gets.

Run:  python examples/fault_tolerance.py
"""

from repro.core import Checkpoint, MobileObject, MRTS, checkpoint, handler, restore
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Cell(MobileObject):
    """One cell of a toy iterative stencil over a ring of mobile objects."""

    def __init__(self, pointer, index, value=0.0):
        super().__init__(pointer)
        self.index = index
        self.value = float(value)
        self.neighbors = []

    @handler
    def wire(self, ctx, neighbors):
        self.neighbors = list(neighbors)

    @handler
    def exchange(self, ctx):
        for nbr in self.neighbors:
            ctx.post(nbr, "absorb", self.value / (2 * len(self.neighbors)))

    @handler
    def absorb(self, ctx, amount):
        # Accumulate only: addition commutes, so the result is independent
        # of message ordering (and therefore of checkpoint/restore timing).
        self.incoming = getattr(self, "incoming", 0.0) + amount

    @handler
    def commit(self, ctx):
        self.value = self.value / 2 + getattr(self, "incoming", 0.0)
        self.incoming = 0.0


def cluster():
    return ClusterSpec(n_nodes=2, node=NodeSpec(cores=2, memory_bytes=1 << 22))


def build(rt, n_cells=8):
    ptrs = [rt.create_object(Cell, k, 100.0 if k == 0 else 0.0, node=k % 2)
            for k in range(n_cells)]
    for k, p in enumerate(ptrs):
        rt.post(p, "wire", [ptrs[(k - 1) % n_cells], ptrs[(k + 1) % n_cells]])
    rt.run()
    return ptrs


def phase(rt, ptrs):
    for p in ptrs:
        rt.post(p, "exchange")
    rt.run()
    for p in ptrs:
        rt.post(p, "commit")
    rt.run()


def values(rt, ptrs):
    return [round(rt.get_object(p).value, 6) for p in ptrs]


def main():
    # Reference run: 4 uninterrupted phases.
    ref = MRTS(cluster())
    ref_ptrs = build(ref)
    for _ in range(4):
        phase(ref, ref_ptrs)
    expected = values(ref, ref_ptrs)
    print("uninterrupted result:", expected)

    # Fault-tolerant run: snapshot after phase 2, crash, restore, resume.
    rt = MRTS(cluster())
    ptrs = build(rt)
    phase(rt, ptrs)
    phase(rt, ptrs)
    snap = checkpoint(rt)
    blob = snap.to_bytes()
    print(f"checkpoint after phase 2: {snap.n_objects} objects, "
          f"{len(blob)} bytes on stable storage")

    del rt  # --- the crash ---

    rt2 = MRTS(cluster())
    restored = restore(Checkpoint.from_bytes(blob), rt2, class_map={"Cell": Cell})
    ptrs2 = [restored[p.oid] for p in ptrs]
    print("restored on a fresh runtime; resuming phases 3 and 4...")
    phase(rt2, ptrs2)
    phase(rt2, ptrs2)
    resumed = values(rt2, ptrs2)
    print("resumed result:      ", resumed)
    assert resumed == expected, "restore must be transparent to the result"
    print("fault tolerance OK: identical to the uninterrupted run")


if __name__ == "__main__":
    main()
