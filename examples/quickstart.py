#!/usr/bin/env python3
"""Quickstart: mobile objects, active messages, and out-of-core spill.

Builds a tiny MRTS application from scratch:

1. define a mobile-object class with message handlers,
2. create objects across a 2-node cluster,
3. post one-sided messages and run to quiescence,
4. shrink node memory so the runtime must spill objects to (real) files,
   and observe that the computation is unaffected.

Run:  python examples/quickstart.py
"""

from repro.core import FileBackend, MobileObject, MRTS, handler
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Histogram(MobileObject):
    """A mobile object holding a bucket of samples."""

    def __init__(self, pointer, label):
        super().__init__(pointer)
        self.label = label
        self.samples = []

    @handler
    def add_samples(self, ctx, values):
        """One-sided message: deposit samples into this bucket."""
        self.samples.extend(values)
        self.mark_dirty()  # size changed: tell the out-of-core layer

    @handler
    def report(self, ctx, reply_to):
        """Send our count to a collector object."""
        ctx.post(reply_to, "collect", self.label, len(self.samples))


class Collector(MobileObject):
    def __init__(self, pointer):
        super().__init__(pointer)
        self.results = {}

    @handler
    def collect(self, ctx, label, count):
        self.results[label] = count


def run(memory_bytes, title):
    print(f"--- {title} (node memory = {memory_bytes // 1024} KiB) ---")
    cluster = ClusterSpec(
        n_nodes=2, node=NodeSpec(cores=2, memory_bytes=memory_bytes)
    )
    backend = FileBackend()  # real files under a temp dir
    rt = MRTS(cluster, storage_factory=lambda rank: backend)

    buckets = [
        rt.create_object(Histogram, f"bucket-{k}", node=k % 2)
        for k in range(8)
    ]
    collector = rt.create_object(Collector, node=0)

    # Post 5 rounds of 1000 samples to every bucket, then ask for reports.
    for round_no in range(5):
        for ptr in buckets:
            rt.post(ptr, "add_samples", [float(v) for v in range(1000)])
    for ptr in buckets:
        rt.post(ptr, "report", collector)
    stats = rt.run()

    results = rt.get_object(collector).results
    print(f"collected: {sorted(results.items())[:3]} ... ({len(results)} buckets)")
    assert all(count == 5000 for count in results.values())
    print(
        f"virtual time {stats.total_time * 1e3:.2f} ms | "
        f"messages {stats.messages_sent} | "
        f"spills {stats.objects_stored} | reloads {stats.objects_loaded}"
    )
    backend.cleanup()
    print()


if __name__ == "__main__":
    # Plenty of memory: everything stays in core.
    run(64 * 1024 * 1024, "in-core")
    # Tiny memory: the out-of-core layer must spill buckets between
    # message bursts — same results, now with disk traffic.
    run(96 * 1024, "out-of-core")
    print("quickstart OK")
