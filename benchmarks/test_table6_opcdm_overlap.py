"""Table VI: OPCDM computation/communication/disk breakdown and overlap."""

from conftest import run_experiment

from repro.evalsim.experiments import table6


def test_table6_overlap_for_large_problems(benchmark):
    exp = run_experiment(benchmark, table6)
    sizes = exp.column("size (M)")
    overlaps = exp.column("Overlap %")
    largest = [o for s, o in zip(sizes, overlaps) if s == max(sizes)]
    assert any(o > 40.0 for o in largest)
    # Overlap grows with problem size within each PE group.
    rows = list(zip(exp.column("PEs"), sizes, overlaps))
    for pes in sorted({r[0] for r in rows}):
        series = [o for p, s, o in rows if p == pes]
        assert series[-1] >= series[0]
