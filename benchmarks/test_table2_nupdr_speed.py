"""Table II: single-PE Speed of NUPDR and ONUPDR (4 PEs)."""

from conftest import numeric, run_experiment

from repro.evalsim.experiments import table2


def test_table2_speed_bands(benchmark):
    exp = run_experiment(benchmark, table2)
    base = numeric(exp.column("NUPDR speed"))
    ours = numeric(exp.column("ONUPDR speed"))
    # In-core: NUPDR fast (paper ~114-124k; accept 80-160k band).
    assert all(80.0 <= s <= 160.0 for s in base)
    # ONUPDR in-core close to NUPDR; deep OOC declines to a sustained
    # plateau (paper: ~28-29k; accept 8-60k).
    assert ours[0] > 0.6 * base[0]
    tail = ours[-3:]
    assert all(8.0 <= s <= 60.0 for s in tail)
    # The plateau: the last two speeds within 35% of each other.
    assert abs(tail[-1] - tail[-2]) <= 0.35 * max(tail[-1], tail[-2])