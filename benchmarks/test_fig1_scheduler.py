"""Figure 1: queue wait time vs requested node count."""

from conftest import run_experiment

from repro.evalsim.experiments import fig1


def test_fig1_wait_grows_with_width(benchmark):
    exp = run_experiment(benchmark, fig1)
    widths = exp.column("nodes requested")
    waits = exp.column("median wait (min)")
    by = dict(zip(widths, waits))
    # Paper: <16 nodes within minutes.
    narrow = [by[w] for w in widths if w < 16]
    assert max(narrow) < 20.0
    # 32 nodes on the order of half an hour to ~an hour.
    assert 10.0 < by[32] < 120.0
    # 100+ nodes: hours.
    assert by[max(widths)] > 120.0
    # Monotone growth over the wide range.
    assert by[max(widths)] > by[32] > max(narrow)
