"""Table V: ONUPDR computation/synchronization/disk breakdown and overlap."""

from conftest import run_experiment

from repro.evalsim.experiments import table5


def test_table5_overlap_for_large_problems(benchmark):
    exp = run_experiment(benchmark, table5)
    sizes = exp.column("size (M)")
    overlaps = exp.column("Overlap %")
    largest = [o for s, o in zip(sizes, overlaps) if s == max(sizes)]
    assert any(o > 50.0 for o in largest)
    assert all(d > 10.0 for d in exp.column("Disk %"))
