"""Ablations for the paper's proposed extensions.

* remote memory as the out-of-core medium ([33] in the conclusion) vs the
  local disk: same swap logic, different medium cost;
* message aggregation (the PCDM optimization) vs per-message sends;
* dynamic load balancing over mobile objects vs a skewed placement.
"""

from repro.core import (
    GreedyBalancer,
    MobileObject,
    MRTS,
    MRTSConfig,
    attach_remote_memory,
    handler,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Blob(MobileObject):
    def __init__(self, pointer, size=60_000):
        super().__init__(pointer)
        self.data = bytes(size)
        self.touches = 0

    @handler
    def touch(self, ctx):
        self.touches += 1
        ctx.charge(0.002)


def _ooc_workload(rt):
    ptrs = [rt.create_object(Blob, node=k % 2) for k in range(8)]
    for _ in range(4):
        for p in ptrs:
            rt.post(p, "touch")
    stats = rt.run()
    assert all(rt.get_object(p).touches == 4 for p in ptrs)
    return stats


def _cluster(disk_latency=5e-3, disk_bandwidth=60e6):
    return ClusterSpec(
        n_nodes=2,
        node=NodeSpec(
            cores=1,
            memory_bytes=200_000,
            disk_latency=disk_latency,
            disk_bandwidth=disk_bandwidth,
        ),
    )


def test_remote_memory_beats_slow_disk(benchmark):
    """With a slow local disk, spilling to a neighbor's RAM wins."""

    def run_pair():
        disk_rt = MRTS(_cluster(disk_latency=8e-3, disk_bandwidth=30e6))
        disk_stats = _ooc_workload(disk_rt)
        rmem_rt = MRTS(_cluster(disk_latency=8e-3, disk_bandwidth=30e6))
        attach_remote_memory(rmem_rt, pool_bytes_per_node=4 << 20)
        rmem_stats = _ooc_workload(rmem_rt)
        return disk_stats, rmem_stats

    disk_stats, rmem_stats = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert disk_stats.objects_stored > 0
    assert rmem_stats.objects_stored > 0
    assert rmem_stats.total_time < disk_stats.total_time
    print(
        f"\ndisk medium: {disk_stats.total_time*1e3:.2f} ms | "
        f"remote memory: {rmem_stats.total_time*1e3:.2f} ms "
        f"({disk_stats.total_time / rmem_stats.total_time:.1f}x faster)"
    )


class Spray(MobileObject):
    @handler
    def spray(self, ctx, targets, rounds):
        for _ in range(rounds):
            for t in targets:
                ctx.post(t, "touch")


def test_aggregation_cuts_network_latency_cost(benchmark):
    """Batched small messages amortize per-message startup (PCDM §I.A)."""

    def run(aggregation):
        config = MRTSConfig(message_aggregation=aggregation)
        cluster = ClusterSpec(
            n_nodes=2, node=NodeSpec(cores=1, memory_bytes=1 << 24)
        )
        rt = MRTS(cluster, config=config)
        src = rt.create_object(Spray, node=0)
        sinks = [rt.create_object(Blob, 100, node=1) for _ in range(8)]
        rt.post(src, "spray", sinks, 16)
        return rt.run()

    def run_pair():
        return run(1), run(16)

    plain, batched = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert batched.messages_sent < plain.messages_sent / 4
    print(
        f"\nwire transfers: plain={plain.messages_sent} "
        f"batched={batched.messages_sent}"
    )


class Worker(MobileObject):
    def __init__(self, pointer):
        super().__init__(pointer)
        self.done = 0

    @handler
    def work(self, ctx):
        self.done += 1
        ctx.charge(0.01)


def test_load_balancing_improves_makespan(benchmark):
    """Overdecomposition + mobility: rebalancing a skewed placement wins."""

    def run(balance):
        cluster = ClusterSpec(
            n_nodes=4, node=NodeSpec(cores=1, memory_bytes=1 << 24)
        )
        rt = MRTS(cluster)
        ptrs = [rt.create_object(Worker, node=0) for _ in range(16)]
        for p in ptrs:
            for _ in range(4):
                rt.post(p, "work")
        if balance:
            GreedyBalancer().rebalance(rt)
        return rt.run()

    def run_pair():
        return run(False), run(True)

    skewed, balanced = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert balanced.total_time < skewed.total_time * 0.6
    print(
        f"\nskewed: {skewed.total_time:.2f}s | balanced: "
        f"{balanced.total_time:.2f}s"
    )
