"""Figure 6: NUPDR vs ONUPDR at 2/4/8 PEs (in-core overhead)."""

from conftest import run_experiment

from repro.evalsim.experiments import fig6


def test_fig6_overhead_bands(benchmark):
    exp = run_experiment(benchmark, fig6)
    rows = list(zip(exp.column("PEs"), exp.column("overhead %")))
    by_pe = {}
    for pes, over in rows:
        by_pe.setdefault(pes, []).append(over)
    # Paper: up to 41% at 2 PEs (allocator effect)...
    assert max(by_pe[2]) > 25.0
    # ... but acceptable (<=18%, we allow 22%) at 4 and 8 PEs.
    assert max(by_pe[4]) < 22.0
    assert max(by_pe[8]) < 22.0
    # The 2-PE overhead strictly dominates the others.
    assert min(by_pe[2]) > max(by_pe[4])
    assert min(by_pe[2]) > max(by_pe[8])
