"""Figure 5: UPDR (in-core) vs OUPDR execution time vs problem size."""

from conftest import numeric, run_experiment

from repro.evalsim.experiments import fig5


def test_fig5_oupdr_overhead_small_in_core(benchmark):
    exp = run_experiment(benchmark, fig5)
    sizes = exp.column("size (M)")
    updr16 = exp.column("UPDR 16PE")
    oupdr16 = exp.column("OUPDR 16PE")
    # Where the problem sits comfortably in core (below the soft swapping
    # threshold: half of the 32 GB aggregate), OUPDR must be close to UPDR
    # (paper: <=12%; we accept <=25% for calibration drift).  Near the
    # memory edge the OOC layer legitimately starts spilling.
    comfortable = 0.5 * 32 * 1024**3 / 270 / 1e6  # ~60M elements
    compared = 0
    for size, base, ours in zip(sizes, updr16, oupdr16):
        if isinstance(base, (int, float)) and size <= comfortable:
            assert ours <= base * 1.25, (size, base, ours)
            assert ours >= base * 0.75
            compared += 1
    assert compared >= 2
    # The largest size must exceed plain UPDR's 16-PE memory (paper: 175M
    # is too large) while OUPDR still handles it.
    assert updr16[-1] == "n/a"
    assert isinstance(oupdr16[-1], (int, float))
    # Times grow with size for OUPDR.
    ooc_times = numeric(oupdr16)
    assert ooc_times == sorted(ooc_times)
