"""Table IV: OUPDR computation/communication/disk breakdown and overlap."""

from conftest import run_experiment

from repro.evalsim.experiments import table4


def test_table4_overlap_exceeds_half_for_large(benchmark):
    exp = run_experiment(benchmark, table4)
    sizes = exp.column("size (M)")
    overlaps = exp.column("Overlap %")
    disk = exp.column("Disk %")
    # The out-of-core runs do real disk work...
    assert all(d > 10.0 for d in disk)
    # ...and the paper's headline: overlap exceeds 50% for large problems.
    largest = [o for s, o in zip(sizes, overlaps) if s == max(sizes)]
    assert any(o > 50.0 for o in largest)
    # Overlap grows with size within each PE group.
    rows = list(zip(exp.column("PEs"), sizes, overlaps))
    for pes in sorted({r[0] for r in rows}):
        series = [o for p, s, o in rows if p == pes]
        assert series[-1] >= series[0]
