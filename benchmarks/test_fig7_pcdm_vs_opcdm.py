"""Figure 7: PCDM (in-core) vs OPCDM execution times."""

from conftest import numeric, run_experiment

from repro.evalsim.experiments import fig7


def test_fig7_opcdm_close_to_pcdm(benchmark):
    exp = run_experiment(benchmark, fig7)
    pcdm16 = exp.column("PCDM 16PE")
    opcdm16 = exp.column("OPCDM 16PE")
    opcdm8 = exp.column("OPCDM 8PE")
    compared = 0
    for base, ours in zip(pcdm16, opcdm16):
        if isinstance(base, (int, float)):
            # Paper: up to ~13% overhead in-core; allow 25% slack.
            assert ours <= base * 1.3
            compared += 1
    assert compared >= 2
    # Fewer PEs take longer (8 PE rows above 16 PE rows).
    for t8, t16 in zip(numeric(opcdm8), numeric(opcdm16)):
        assert t8 > t16
