"""Ablations for the design choices DESIGN.md calls out.

* swap schemes (LRU default vs LFU/MRU/MU/LU) — §II.E,
* directory update policies (lazy vs eager vs home) — §II.E / [27],
* ONUPDR §III optimizations (direct calls, reordering, priorities,
  multicast collection),
* the §I turnaround example (queue wait + run time).
"""

from conftest import run_experiment

from repro.evalsim.experiments import (
    ablation_directory,
    ablation_swap_schemes,
    intro_turnaround,
)
from repro.geometry import unit_square
from repro.pumg import ONUPDROptions, run_nupdr


def test_ablation_swap_schemes(benchmark):
    exp = run_experiment(benchmark, ablation_swap_schemes)
    rows = {row[0]: (row[1], row[2]) for row in exp.rows}
    # LRU must be competitive: within 15% of the best scheme on both apps.
    for col in (0, 1):
        best = min(v[col] for v in rows.values())
        assert rows["lru"][col] <= best * 1.15
    # MRU (the canonical anti-pattern for streaming reuse) should not be
    # the best scheme for both applications simultaneously.
    assert not all(
        rows["mru"][col] <= min(v[col] for v in rows.values())
        for col in (0, 1)
    )


def test_ablation_directory_policies(benchmark):
    exp = run_experiment(benchmark, ablation_directory)
    rows = {r[0]: dict(zip(exp.headers[1:], r[1:])) for r in exp.rows}
    # Eager pays the most update messages (broadcast per migration).
    assert rows["eager"]["update msgs"] > rows["lazy"]["update msgs"]
    # Eager never forwards; lazy forwards sometimes (stale hints).
    assert rows["eager"]["forwards"] == 0
    assert rows["lazy"]["forwards"] > 0
    # Home pays per-send indirections instead.
    assert rows["home"]["home queries"] > 0
    # Lazy's total protocol overhead beats eager's.
    assert rows["lazy"]["total overhead"] < rows["eager"]["total overhead"]


def test_ablation_onupdr_optimizations(benchmark):
    """§III: the optimizations reduce message traffic without changing
    the meshing outcome."""
    GRADED = ("point_source", [((0.0, 0.0), 0.03)], 0.25, 0.3)

    def run_pair():
        optimized = run_nupdr(
            unit_square(), GRADED, granularity=6.0,
            options=ONUPDROptions(),
        )
        plain = run_nupdr(
            unit_square(), GRADED, granularity=6.0,
            options=ONUPDROptions(
                lock_queue=False, direct_calls=False,
                reorder_queue=False, priorities=False,
            ),
        )
        return optimized, plain

    optimized, plain = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    # Direct calls replace messages: fewer network messages sent.
    assert optimized.stats.messages_sent <= plain.stats.messages_sent
    # Same meshing outcome (identical sizing target).
    assert abs(optimized.n_points - plain.n_points) <= max(
        15, plain.n_points // 2
    )
    print(
        f"\noptimized: msgs={optimized.stats.messages_sent} "
        f"t={optimized.stats.total_time:.4f}s | plain: "
        f"msgs={plain.stats.messages_sent} t={plain.stats.total_time:.4f}s"
    )


def test_intro_turnaround(benchmark):
    exp = run_experiment(benchmark, intro_turnaround)
    totals = dict(zip(exp.column("config"), exp.column("total (min)")))
    # The paper's motivating claim: despite running 2.4x longer, the
    # out-of-core job on half the nodes returns results sooner.
    assert totals["out-of-core 16 nodes"] < totals["in-core 32 nodes"]
