"""Figure 9: ONUPDR at very large problem sizes."""

from conftest import run_experiment

from repro.evalsim.experiments import fig9


def test_fig9_near_linear_growth(benchmark):
    exp = run_experiment(benchmark, fig9)
    sizes = exp.column("size (M)")
    # Aggregate memory per configuration (stems-like nodes, 8 GB each);
    # the near-linear claim concerns the out-of-core regime, so judge
    # per-element flatness only for sizes >= 2x aggregate memory (the
    # smallest sizes still fit in core and are naturally much faster).
    agg_gb = {"4 PE": 8, "8 PE": 16}
    for col in ("4 PE", "8 PE"):
        times = exp.column(col)
        assert times == sorted(times)  # monotone everywhere
        knee_m = 2 * agg_gb[col] * 1024**3 / 270 / 1e6
        tail = [
            t / s for s, t in zip(sizes, times) if s >= knee_m
        ]
        assert len(tail) >= 2
        assert max(tail) <= min(tail) * 1.8  # almost linear in deep OOC
        assert tail[-1] <= tail[-2] * 1.35
    for t4, t8 in zip(exp.column("4 PE"), exp.column("8 PE")):
        assert t8 < t4
