"""Shared benchmark helpers.

Each benchmark regenerates one figure/table of the paper via
`repro.evalsim.experiments`, asserts the paper's qualitative claims
(shape, not absolute numbers), and prints the reproduced table (visible
with ``pytest -s``).
"""

import pytest


def run_experiment(benchmark, fn, scale=1.0):
    """Run an experiment function once under pytest-benchmark."""
    exp = benchmark.pedantic(fn, kwargs={"scale": scale}, rounds=1, iterations=1)
    print()
    print(exp.render())
    return exp


def numeric(values):
    """Filter out 'n/a' placeholders from a column."""
    return [v for v in values if isinstance(v, (int, float))]
