"""Figure 10: OPCDM at very large problem sizes."""

from conftest import run_experiment

from repro.evalsim.experiments import fig10


def test_fig10_near_linear_growth(benchmark):
    exp = run_experiment(benchmark, fig10)
    sizes = exp.column("size (M)")
    for col in ("8 PE", "16 PE"):
        times = exp.column(col)
        assert times == sorted(times)
        per_elt = [t / s for s, t in zip(sizes, times)]
        assert max(per_elt) <= min(per_elt) * 2.0
    for t8, t16 in zip(exp.column("8 PE"), exp.column("16 PE")):
        assert t16 < t8
