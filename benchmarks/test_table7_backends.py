"""Table VII: ONUPDR with TBB-like vs GCD-like computing-layer backends."""

from conftest import run_experiment

from repro.evalsim.experiments import table7


def test_table7_gcd_slightly_slower(benchmark):
    exp = run_experiment(benchmark, table7)
    tbb = exp.column("TBB spdup")
    gcd = exp.column("GCD spdup")
    # Paper: "GCD implementation is slightly slower yet similar trends".
    for s_tbb, s_gcd in zip(tbb, gcd):
        assert s_gcd <= s_tbb
        assert s_gcd > 0.85 * s_tbb  # slightly, not dramatically
    # Both scale well on 4 PEs (comparable to plain NUPDR's speedup).
    assert min(tbb) > 3.0
    assert min(gcd) > 2.8
    # T1 grows linearly with size.
    t1 = exp.column("T1 (s)")
    sizes = exp.column("size (M)")
    per = [t / s for t, s in zip(t1, sizes)]
    assert max(per) <= min(per) * 1.2
