"""Table I: single-PE Speed of UPDR and OUPDR across problem sizes."""

from conftest import numeric, run_experiment

from repro.evalsim.experiments import table1


def test_table1_speed_sustained(benchmark):
    exp = run_experiment(benchmark, table1)
    base = numeric(exp.column("UPDR speed"))
    ours = numeric(exp.column("OUPDR speed (16PE)"))
    # The paper's point: speed stays roughly constant as size grows.
    assert max(base) <= min(base) * 1.6
    # OUPDR: fast in-core, declining to a sustained out-of-core plateau
    # (paper: 26-39k band; our tail must be flat).
    assert max(ours) <= min(ours) * 3.0
    tail = ours[-3:]
    assert max(tail) <= min(tail) * 1.35
    # UPDR (old SciClone PEs) lands near the paper's ~24k band.
    assert 15.0 <= sum(base) / len(base) <= 45.0
    # OUPDR keeps working at sizes where plain UPDR ran out of PEs/memory.
    assert len(ours) > len(base)
