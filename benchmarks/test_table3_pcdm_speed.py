"""Table III: single-PE Speed of PCDM and OPCDM (16 PEs)."""

from conftest import numeric, run_experiment

from repro.evalsim.experiments import table3


def test_table3_speed_sustained(benchmark):
    exp = run_experiment(benchmark, table3)
    base = numeric(exp.column("PCDM speed"))
    ours = numeric(exp.column("OPCDM speed"))
    # Both sustain their speed as sizes grow (no collapse).
    assert base and ours
    assert max(base) <= min(base) * 1.6
    assert max(ours) <= min(ours) * 2.5
    # OPCDM covers sizes PCDM cannot (aggregate memory exceeded).
    assert len(ours) > len(base)
