"""Figure 8: OUPDR at very large problem sizes (near-linear scaling)."""

from conftest import run_experiment

from repro.evalsim.experiments import fig8


def _near_linear(sizes, times, tolerance=0.6):
    """Time-per-element must not degrade by more than `tolerance` overall."""
    per_elt = [t / s for s, t in zip(sizes, times)]
    assert max(per_elt) <= min(per_elt) * (1.0 + tolerance), per_elt


def test_fig8_near_linear_growth(benchmark):
    exp = run_experiment(benchmark, fig8)
    sizes = exp.column("size (M)")
    for col in ("8 PE", "16 PE"):
        times = exp.column(col)
        assert times == sorted(times)  # monotone in size
        _near_linear(sizes, times)
    # More PEs is faster.
    for t8, t16 in zip(exp.column("8 PE"), exp.column("16 PE")):
        assert t16 < t8
