"""Tests for formatting helpers."""

from hypothesis import given, strategies as st

from repro.util import format_table, human_bytes, human_time


def test_human_bytes_units():
    assert human_bytes(0) == "0 B"
    assert human_bytes(512) == "512 B"
    assert human_bytes(2048) == "2.0 KiB"
    assert human_bytes(3 * 1024**2) == "3.0 MiB"
    assert human_bytes(5 * 1024**3) == "5.0 GiB"
    assert human_bytes(2 * 1024**4) == "2.0 TiB"


def test_human_time_units():
    assert human_time(30) == "30.0 s"
    assert human_time(600) == "10.0 min"
    assert human_time(3 * 3600) == "3.0 h"
    assert human_time(-30) == "-30.0 s"


@given(st.floats(min_value=0, max_value=1e15))
def test_human_bytes_always_formats(n):
    out = human_bytes(n)
    assert any(out.endswith(u) for u in ("B", "KiB", "MiB", "GiB", "TiB"))


def test_format_table_alignment():
    out = format_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    # title, header, separator, two rows
    assert len(lines) == 5
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows aligned to same width


def test_format_table_no_title():
    out = format_table(["x"], [[1]])
    assert out.splitlines()[0].startswith("x")
