"""The chaos matrix plus unit tests for the automatic-recovery machinery.

Three layers of assurance:

* every cell of :data:`CHAOS_MATRIX` must pass (same seeded verdict the
  ``mrts-bench chaos`` subcommand enforces), and a cell re-run must be
  bit-for-bit identical — chaos here is deterministic chaos;
* :class:`RecoveryPolicy` unit tests pin the supervisor's contract:
  baseline restore + replay-log exactly-once delivery, the restart
  budget, degraded mode after ``StorageFull``, the freshness check on
  recovery factories, and the corrupt-load fallback that repairs a
  damaged storage copy from the latest snapshot without a restart;
* regression tests for the write-behind/recovery interaction: a fault
  arriving while a detached write-behind charge is draining must not
  lose the object's bytes, and recovery afterwards must not deadlock
  the re-load completion barrier.
"""

import pytest

from repro.core import MRTS, MRTSConfig, MobileObject, handler
from repro.core.recovery import RecoveryFailed, RecoveryPolicy
from repro.core.storage import MemoryBackend, decode_frame
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing import FaultPlan, FaultyBackend
from repro.testing.chaos import CHAOS_MATRIX, run_chaos_case
from repro.testing.harness import FixedCostModel
from repro.util.errors import MRTSError
from repro.testing.faults import StorageFault

from dataclasses import replace


# ================================================================= matrix
@pytest.mark.parametrize("spec", CHAOS_MATRIX, ids=lambda s: s.name)
def test_chaos_matrix_cell_passes(spec):
    report = run_chaos_case(spec)
    assert report.ok, report.render()


def test_chaos_cell_is_deterministic():
    """Same spec, same verdict: restarts, retries, events, everything."""
    spec = next(s for s in CHAOS_MATRIX if s.name == "fail-stop-store")
    first = run_chaos_case(spec)
    second = run_chaos_case(spec)
    assert first.ok and second.ok, (first.render(), second.render())
    assert (first.restarts, first.retries, first.corrupt_loads,
            first.degraded, first.events) == \
           (second.restarts, second.retries, second.corrupt_loads,
            second.degraded, second.events)


@pytest.mark.stress
@pytest.mark.parametrize("name", ["flaky-nfs", "fail-stop-store", "disk-full"])
def test_chaos_matrix_scaled_up(name):
    """Heavier cells: more actors, deeper cascades, tighter memory."""
    base = next(s for s in CHAOS_MATRIX if s.name == name)
    spec = replace(base, n_actors=12, pulses=5, hops=5,
                   memory_bytes=32 * 1024, seed=base.seed + 100)
    report = run_chaos_case(spec)
    assert report.ok, report.render()


# ==================================================== supervisor unit tests
class Cell(MobileObject):
    """Commutative state only, so final state is delivery-order free."""

    def __init__(self, ptr, payload_bytes=4096):
        super().__init__(ptr)
        self.payload = bytes(payload_bytes)
        self.ticks = 0

    @handler
    def tick(self, ctx):
        self.ticks += 1

    @handler
    def bloat(self, ctx, nbytes):
        self.payload += bytes(nbytes)
        self.ticks += 1


def make_supervisor(
    plan=None,
    heal=True,
    n_cells=6,
    payload=4096,
    memory=24 * 1024,
    interval=1000,
    max_restarts=4,
):
    """A supervised 2-node runtime full of Cells.

    ``heal=True`` gives post-restart incarnations a clean medium (the
    failed disk was replaced); ``heal=False`` keeps the same plan, so
    every incarnation re-faults.  Returns ``(supervisor, backends)`` with
    ``backends[(incarnation, rank)]`` the innermost MemoryBackend — the
    raw framed bytes tests corrupt or inspect.
    """
    incarnation = [0]
    backends = {}

    def factory(config=None):
        i = incarnation[0]
        incarnation[0] += 1
        active = plan if (i == 0 or not heal) else None

        def make_backend(rank):
            mem = MemoryBackend()
            backends[(i, rank)] = mem
            if active is None:
                return mem
            return FaultyBackend(
                mem, replace(active, seed=active.seed + rank + 100 * i)
            )

        return MRTS(
            ClusterSpec(n_nodes=2, node=NodeSpec(cores=1, memory_bytes=memory)),
            config=config or MRTSConfig(),
            storage_factory=make_backend,
            cost_model=FixedCostModel(1e-4),
        )

    def build(rt):
        return [
            rt.create_object(Cell, payload, node=k % 2) for k in range(n_cells)
        ]

    sup = RecoveryPolicy(
        factory, build=build, interval=interval, max_restarts=max_restarts,
        class_map={"Cell": Cell},
    )
    return sup, backends


def drive(sup, rounds=3, grow=4096):
    """Bloat every cell ``rounds`` times (forcing spill traffic), run each."""
    ptrs = sorted(sup.pointers.values(), key=lambda p: p.oid)
    for _ in range(rounds):
        for p in ptrs:
            sup.post(p, "bloat", grow)
        sup.run()
    return ptrs


def final_state(sup):
    return {
        oid: (sup.get_object(p).ticks, len(sup.get_object(p).payload))
        for oid, p in sorted(sup.pointers.items())
    }


def test_recovers_from_fail_stop_and_replays_external_posts():
    """interval=1000 -> only the baseline snapshot exists when the fault
    hits, so recovery = baseline restore + full replay log.  Exactly-once
    delivery shows up as tick counts equal to the fault-free run's."""
    reference, _ = make_supervisor()
    drive(reference)
    want = final_state(reference)

    sup, _ = make_supervisor(plan=FaultPlan(fail_store_at=3, fail_stop=True,
                                            seed=11))
    drive(sup)
    assert sup.restarts >= 1
    assert any(ev.startswith("restart #1") for ev in sup.events)
    assert final_state(sup) == want


def test_checkpoint_then_fault_does_not_double_deliver():
    """interval=1 -> a snapshot lands between phases; the replay log must
    be cleared at the cut, or replays would double-count ticks."""
    reference, _ = make_supervisor(interval=1)
    drive(reference, rounds=4)
    want = final_state(reference)

    sup, _ = make_supervisor(
        plan=FaultPlan(fail_store_at=6, fail_stop=True, seed=12), interval=1,
    )
    drive(sup, rounds=4)
    assert sup.restarts >= 1
    assert len(sup.checkpointer.snapshots) > 1  # recovered past the baseline
    assert final_state(sup) == want


def test_restart_budget_exhaustion_raises_recovery_failed():
    """heal=False: every incarnation faults on its first store, burning
    the budget until RecoveryFailed (with the last cause chained)."""
    sup, _ = make_supervisor(
        plan=FaultPlan(fail_store_at=1, fail_stop=True, seed=13),
        heal=False, max_restarts=3,
    )
    with pytest.raises(RecoveryFailed, match="gave up after 3 restarts"):
        drive(sup)
    assert sup.restarts == 4  # 3 allowed + the one that overflowed


def test_disk_full_triggers_degraded_rebuild():
    reference, _ = make_supervisor()
    drive(reference)
    want = final_state(reference)

    sup, _ = make_supervisor(plan=FaultPlan(disk_full_at=2, seed=14))
    drive(sup)
    assert sup.restarts >= 1
    assert sup.degraded_restarts == 1
    assert sup.runtime.config.degraded
    assert all(nrt.ooc.degraded for nrt in sup.runtime.nodes)
    assert any("degraded mode" in ev for ev in sup.events)
    assert final_state(sup) == want


def test_degraded_mode_stops_proactive_spills():
    sup, _ = make_supervisor(plan=FaultPlan(disk_full_at=2, seed=14))
    drive(sup)
    for nrt in sup.runtime.nodes:
        assert nrt.ooc.advise_swap() == []


def test_recovery_factory_must_return_fresh_runtime():
    incarnation = [0]

    def factory(config=None):
        i = incarnation[0]
        incarnation[0] += 1
        plan = FaultPlan(fail_store_at=3, fail_stop=True, seed=15)

        def make_backend(rank):
            mem = MemoryBackend()
            if i == 0:
                return FaultyBackend(mem, replace(plan, seed=plan.seed + rank))
            return mem

        rt = MRTS(
            ClusterSpec(n_nodes=2, node=NodeSpec(cores=1,
                                                 memory_bytes=24 * 1024)),
            storage_factory=make_backend,
            cost_model=FixedCostModel(1e-4),
        )
        if i > 0:
            rt.create_object(Cell, 64)  # contraband: not a fresh runtime
        return rt

    def build(rt):
        return [rt.create_object(Cell, 4096, node=k % 2) for k in range(6)]

    sup = RecoveryPolicy(factory, build=build, class_map={"Cell": Cell})
    with pytest.raises(MRTSError, match="fresh"):
        drive(sup)


def test_corrupt_storage_copy_repaired_from_snapshot_without_restart():
    """Bit rot on the medium: the next load detects the bad frame, pulls
    the payload from the newest snapshot containing the object, re-stores
    it (repairing the medium) and carries on — no restart."""
    sup, backends = make_supervisor(interval=1)
    drive(sup)  # spill traffic + a post-bloat checkpoint per round
    assert len(sup.checkpointer.snapshots) > 1

    # Find a spilled object and vandalize its frame on the inner medium.
    victim = None
    for nrt in sup.runtime.nodes:
        for oid, rec in nrt.locals.items():
            if rec.obj is None:
                victim = (nrt.rank, oid)
    assert victim is not None, "drive() produced no spilled object"
    rank, oid = victim
    mem = backends[(0, rank)]
    frame = mem._data[oid]
    mem._data[oid] = frame[:-1] + bytes([frame[-1] ^ 0xFF])

    before = sup.get_object(sup.pointers[oid]).ticks \
        if sup.runtime.nodes[rank].locals[oid].obj is not None else None
    sup.post(sup.pointers[oid], "tick")
    sup.run()

    assert sup.restarts == 0
    assert sup.runtime.stats.corrupt_loads == 1
    obj = sup.get_object(sup.pointers[oid])
    assert obj.ticks == 4  # 3 bloats + 1 tick, nothing lost or doubled
    # The medium was repaired in place: the frame decodes again.
    if oid in mem._data:
        decode_frame(mem._data[oid])
    assert before is None  # get_object above faulted-in the spilled copy


def test_corrupt_copy_stored_since_snapshot_escalates_to_restart():
    """The baseline snapshot *does* hold the object, but the object was
    re-stored (post-bloat) since — the snapshot payload is stale.  An
    in-place repair would silently rewind one object to an older cut than
    the rest of the world, so the fallback must refuse: the CorruptObject
    escalates to the supervisor, which restores a consistent cut and
    replays its way back to the reference state."""
    sup, backends = make_supervisor()  # interval=1000: baseline only
    ptrs = drive(sup)

    victim = None
    for nrt in sup.runtime.nodes:
        for oid, rec in nrt.locals.items():
            if rec.obj is None:
                victim = (nrt.rank, oid)
    assert victim is not None
    rank, oid = victim
    assert oid in sup.runtime.stored_since_snapshot
    mem = backends[(0, rank)]
    frame = mem._data[oid]
    mem._data[oid] = frame[:-1] + bytes([frame[-1] ^ 0xFF])

    reference, _ = make_supervisor()
    ref_ptrs = drive(reference)
    for p in ref_ptrs:
        reference.post(p, "tick")
    reference.run()
    want = final_state(reference)

    for p in ptrs:
        sup.post(p, "tick")
    sup.run()
    assert sup.restarts >= 1  # escalated, not silently rewound
    assert final_state(sup) == want


# ========================================== write-behind + recovery pinning
def test_fault_mid_drain_does_not_lose_stored_bytes():
    """A fail-stop load fault kills the run while a write-behind charge is
    still draining.  The store itself ran synchronously in Python time, so
    the victim's frame must be intact on the medium — write-behind defers
    virtual disk time, never durability.

    Construction: A (small) is spilled at B's creation; ticking A forces a
    load that first evicts B (big dirty spill -> long detached drain),
    then reads A (short) and hits the fail-stop load fault while B's
    drain is still in flight.
    """
    backends = {}
    plan = FaultPlan(fail_load_at=1, fail_stop=True, seed=21)

    def make_backend(rank):
        mem = MemoryBackend()
        backends[rank] = mem
        return FaultyBackend(mem, replace(plan, seed=plan.seed + rank))

    rt = MRTS(
        ClusterSpec(n_nodes=1, node=NodeSpec(cores=1, memory_bytes=12 * 1024)),
        storage_factory=make_backend,
        cost_model=FixedCostModel(1e-4),
    )
    a = rt.create_object(Cell, 6 * 1024, node=0)
    b = rt.create_object(Cell, 10 * 1024, node=0)  # evicts (spills) A
    rt.post(b, "tick")  # dirties B so its eviction needs a store
    rt.run()
    rt.post(a, "tick")
    with pytest.raises(StorageFault):
        rt.run()

    # The fault really did land mid-drain: B's abandoned completion event
    # is still registered on the dead engine.
    assert any(nrt.write_behind.pending for nrt in rt.nodes)
    # Every frame on the raw medium decodes: nothing torn, nothing lost.
    stored = backends[0]._data
    assert stored, "expected spilled objects on the medium"
    for oid, frame in stored.items():
        decode_frame(frame)


def test_recovery_after_mid_drain_fault_completes_and_reloads():
    """Supervised version: the restart must resume from the cut and the
    rebuilt runtime's completion barrier must not inherit the dead
    incarnation's pending drains (a stale barrier would deadlock the
    first re-load of the spilled object)."""
    reference, _ = make_supervisor(memory=16 * 1024, n_cells=4)
    drive(reference, rounds=2)
    for p in sorted(reference.pointers.values(), key=lambda p: p.oid):
        reference.post(p, "tick")
    reference.run()
    want = final_state(reference)

    sup, _ = make_supervisor(
        plan=FaultPlan(fail_load_at=1, fail_stop=True, seed=21),
        memory=16 * 1024, n_cells=4,
    )
    ptrs = drive(sup, rounds=2)
    assert sup.restarts >= 1
    # The rebuilt incarnation must not have inherited the dead engine's
    # completion events (they would never fire on the new engine).
    for nrt in sup.runtime.nodes:
        for done in nrt.write_behind.pending.values():
            assert done.engine is sup.runtime.engine
    # Re-load every object (ticking a spilled object faults it back in):
    # completes without deadlock and loses nothing.
    for p in ptrs:
        sup.post(p, "tick")
    sup.run()
    assert final_state(sup) == want
