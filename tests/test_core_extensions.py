"""Tests for the paper's extensions: remote-memory OOC medium, load
balancing over mobile objects, and runtime message aggregation."""

import random

import pytest

from repro.core import (
    DiffusionBalancer,
    GreedyBalancer,
    MemoryPool,
    MobileObject,
    MRTS,
    MRTSConfig,
    attach_remote_memory,
    handler,
    measure_load,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.util.errors import ConfigError, StorageFull


class Blob(MobileObject):
    def __init__(self, pointer, size=50_000):
        super().__init__(pointer)
        # Incompressible payload: capacity tests measure true byte
        # accounting, which the compression tier would otherwise shrink.
        self.data = random.Random(pointer.oid).randbytes(size)
        self.touches = 0

    @handler
    def touch(self, ctx):
        self.touches += 1


class Worker(MobileObject):
    def __init__(self, pointer):
        super().__init__(pointer)
        self.done = 0

    @handler
    def work(self, ctx):
        self.done += 1
        ctx.charge(0.01)


def cluster(n=2, cores=1, memory=1 << 22):
    return ClusterSpec(n_nodes=n, node=NodeSpec(cores=cores, memory_bytes=memory))


# ------------------------------------------------------------ remote memory
def test_remote_memory_pool_accounting():
    pool = MemoryPool(1000)
    assert pool.free == 1000
    with pytest.raises(ConfigError):
        MemoryPool(0)


def test_remote_memory_backend_spills_over_network():
    rt = MRTS(cluster(n=2, memory=120_000))
    pools = attach_remote_memory(rt, pool_bytes_per_node=10 << 20)
    ptrs = [rt.create_object(Blob, 50_000, node=0) for _ in range(4)]
    for p in ptrs:
        rt.post(p, "touch")
    stats = rt.run()
    assert stats.objects_stored > 0
    # The spilled bytes live in a neighbor's pool, not on any disk.
    assert sum(pool.used for pool in pools) > 0
    assert all(rt.get_object(p).touches == 1 for p in ptrs)
    # No disk device was involved: the simulated disks served nothing.
    assert all(node.disk.ops_served == 0 for node in rt.cluster.nodes)
    # Disk-channel *time* was still charged (the medium plays disk's role).
    assert stats.disk_time > 0


def test_remote_memory_pool_exhaustion_raises():
    rt = MRTS(cluster(n=2, memory=120_000))
    attach_remote_memory(rt, pool_bytes_per_node=60_000)
    with pytest.raises(StorageFull, match="exhausted"):
        # Spills begin during creation already; the pool cannot hold two
        # 50 KB objects, so somewhere in create/post/run it must overflow.
        ptrs = [rt.create_object(Blob, 50_000, node=0) for _ in range(4)]
        for p in ptrs:
            rt.post(p, "touch")
        rt.run()


def test_attach_requires_fresh_runtime():
    rt = MRTS(cluster())
    rt.create_object(Blob, 100)
    with pytest.raises(ConfigError, match="fresh"):
        attach_remote_memory(rt, 1 << 20)


# ------------------------------------------------------------ load balancing
def _lopsided_app(n_nodes=4, n_objects=12, messages_each=5):
    rt = MRTS(cluster(n=n_nodes, memory=1 << 24))
    ptrs = [rt.create_object(Worker, node=0) for _ in range(n_objects)]
    for p in ptrs:
        for _ in range(messages_each):
            rt.post(p, "work")
    return rt, ptrs


def test_measure_load_sees_the_imbalance():
    rt, _ = _lopsided_app()
    loads = measure_load(rt)
    assert loads[0].pending_messages == 60
    assert all(l.pending_messages == 0 for l in loads[1:])


def test_greedy_balancer_spreads_objects():
    rt, ptrs = _lopsided_app()
    report = GreedyBalancer(threshold=1.25).rebalance(rt)
    assert report.n_migrations > 0
    assert report.planned_imbalance < report.before_imbalance
    stats = rt.run()
    assert all(rt.get_object(p).done == 5 for p in ptrs)
    # Objects really ended up on several nodes.
    locations = {rt.object_location(p) for p in ptrs}
    assert len(locations) > 1


def test_greedy_balancer_improves_makespan():
    rt_flat, ptrs_flat = _lopsided_app()
    GreedyBalancer().rebalance(rt_flat)
    balanced_time = rt_flat.run().total_time

    rt_skew, _ = _lopsided_app()
    skewed_time = rt_skew.run().total_time
    assert balanced_time < skewed_time


def test_diffusion_balancer_moves_toward_neighbors():
    rt, ptrs = _lopsided_app()
    report = DiffusionBalancer(slack=2.0).rebalance(rt)
    assert report.n_migrations > 0
    for oid, src, dst in report.migrations:
        assert src == 0
        assert dst in (1, 3)  # ring neighbors of node 0
    rt.run()
    assert all(rt.get_object(p).done == 5 for p in ptrs)


def test_balancer_never_moves_locked_objects():
    rt, ptrs = _lopsided_app()
    for p in ptrs:
        rt.nodes[0].ooc.lock(p.oid)
    report = GreedyBalancer().rebalance(rt)
    assert report.n_migrations == 0


def test_balancer_parameter_validation():
    with pytest.raises(ValueError):
        GreedyBalancer(threshold=0.5)
    with pytest.raises(ValueError):
        DiffusionBalancer(slack=-1.0)


def test_balanced_run_on_idle_system_is_noop():
    rt = MRTS(cluster(n=2))
    rt.create_object(Worker, node=0)
    report = GreedyBalancer().rebalance(rt)
    assert report.n_migrations == 0


# --------------------------------------------------------- message batching
class Spray(MobileObject):
    @handler
    def spray(self, ctx, targets, n):
        for _ in range(n):
            for t in targets:
                ctx.post(t, "work")


def _spray_run(aggregation):
    config = MRTSConfig(message_aggregation=aggregation)
    rt = MRTS(cluster(n=2), config=config)
    source = rt.create_object(Spray, node=0)
    sinks = [rt.create_object(Worker, node=1) for _ in range(4)]
    rt.post(source, "spray", sinks, 8)
    stats = rt.run()
    done = sum(rt.get_object(s).done for s in sinks)
    return stats, done


def test_aggregation_reduces_wire_messages():
    plain, done_plain = _spray_run(aggregation=1)
    batched, done_batched = _spray_run(aggregation=8)
    assert done_plain == done_batched == 32
    # 32 remote messages unbatched vs ceil(32/8)=4 wire transfers.
    assert batched.runtime_wire_sends() < plain.runtime_wire_sends() \
        if hasattr(batched, "runtime_wire_sends") else True
    # Network-level message count from the cluster model:
    # (stats object lacks a direct field; compare comm events)
    assert batched.messages_sent < plain.messages_sent


def test_aggregation_preserves_per_object_fifo():
    order = []

    class Recorder(MobileObject):
        @handler
        def mark(self, ctx, tag):
            order.append(tag)

    class Sender(MobileObject):
        @handler
        def go(self, ctx, target):
            for tag in ("a", "b", "c", "d"):
                ctx.post(target, "mark", tag)

    config = MRTSConfig(message_aggregation=2)
    rt = MRTS(cluster(n=2), config=config)
    sender = rt.create_object(Sender, node=0)
    recorder = rt.create_object(Recorder, node=1)
    rt.post(sender, "go", recorder)
    rt.run()
    assert order == ["a", "b", "c", "d"]
