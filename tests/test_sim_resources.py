"""Tests for queueing resources: Resource, Store, Server."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Engine, Resource, Server, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    eng = Engine()
    res = Resource(eng, capacity=2)
    grants = []
    for i in range(3):
        res.acquire().add_callback(lambda e, i=i: grants.append(i))
    eng.run()
    assert grants == [0, 1]
    res.release()
    eng.run()
    assert grants == [0, 1, 2]


def test_resource_fifo_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def user(name, hold):
        yield res.acquire()
        order.append((name, eng.now))
        yield eng.timeout(hold)
        res.release()

    for name, hold in [("a", 5.0), ("b", 3.0), ("c", 1.0)]:
        eng.process(user(name, hold))
    eng.run()
    assert order == [("a", 0.0), ("b", 5.0), ("c", 8.0)]


def test_release_without_acquire_raises():
    eng = Engine()
    res = Resource(eng, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_capacity_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_resource_utilization_accounting():
    eng = Engine()
    res = Resource(eng, capacity=2)

    def user(hold):
        yield res.acquire()
        yield eng.timeout(hold)
        res.release()

    eng.process(user(10.0))
    eng.process(user(10.0))
    eng.run()
    # 2 units busy for 10 s out of 2 units * 10 s => 100%
    assert res.utilization() == pytest.approx(1.0)


def test_resource_utilization_half():
    eng = Engine()
    res = Resource(eng, capacity=2)

    def user():
        yield res.acquire()
        yield eng.timeout(10.0)
        res.release()

    eng.process(user())
    eng.run()
    assert res.utilization() == pytest.approx(0.5)


# ------------------------------------------------------------------- Store
def test_store_put_then_get():
    eng = Engine()
    store = Store(eng)
    store.put("x")
    got = []
    store.get().add_callback(lambda e: got.append(e.value))
    eng.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        item = yield store.get()
        got.append((eng.now, item))

    def producer():
        yield eng.timeout(7.0)
        store.put("late")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == [(7.0, "late")]


def test_store_fifo_both_sides():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    eng.process(consumer("c1"))
    eng.process(consumer("c2"))

    def producer():
        yield eng.timeout(1.0)
        store.put("first")
        store.put("second")

    eng.process(producer())
    eng.run()
    assert got == [("c1", "first"), ("c2", "second")]


def test_store_len_counts_buffered_items():
    eng = Engine()
    store = Store(eng)
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ------------------------------------------------------------------ Server
def test_server_service_time_formula():
    eng = Engine()
    srv = Server(eng, latency=0.01, bandwidth=100.0)
    assert srv.service_time(50) == pytest.approx(0.01 + 0.5)


def test_server_single_channel_serializes():
    eng = Engine()
    srv = Server(eng, latency=1.0, bandwidth=10.0)  # 10 B => 1+1 = 2 s each
    done = []

    def xfer(name):
        yield from srv.transfer(10)
        done.append((name, eng.now))

    eng.process(xfer("a"))
    eng.process(xfer("b"))
    eng.run()
    assert done == [("a", 2.0), ("b", 4.0)]
    assert srv.bytes_served == 20
    assert srv.ops_served == 2


def test_server_two_channels_overlap():
    eng = Engine()
    srv = Server(eng, latency=1.0, bandwidth=10.0, channels=2)
    done = []

    def xfer(name):
        yield from srv.transfer(10)
        done.append((name, eng.now))

    eng.process(xfer("a"))
    eng.process(xfer("b"))
    eng.run()
    assert done == [("a", 2.0), ("b", 2.0)]


def test_server_rejects_bad_params():
    eng = Engine()
    with pytest.raises(ValueError):
        Server(eng, latency=-1.0, bandwidth=1.0)
    with pytest.raises(ValueError):
        Server(eng, latency=0.0, bandwidth=0.0)
    srv = Server(eng, latency=0.0, bandwidth=1.0)
    with pytest.raises(ValueError):
        list(srv.transfer(-5))


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=20),
    latency=st.floats(min_value=0.0, max_value=1.0),
    bandwidth=st.floats(min_value=1.0, max_value=1e6),
)
def test_server_makespan_is_sum_on_one_channel(sizes, latency, bandwidth):
    """Property: one channel means total time == sum of service times."""
    eng = Engine()
    srv = Server(eng, latency=latency, bandwidth=bandwidth)

    def xfer(n):
        yield from srv.transfer(n)

    for n in sizes:
        eng.process(xfer(n))
    eng.run()
    expected = sum(srv.service_time(n) for n in sizes)
    assert eng.now == pytest.approx(expected, rel=1e-9)
