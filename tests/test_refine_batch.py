"""Batch (numpy) geometry kernels and anisotropic metric sizing.

The central property: the vectorized paths are *semantically invisible*
— batch predicates agree with the exact scalar predicates wherever the
float filter is certain, and the batched bad-triangle scan returns
exactly the triangles the scalar scan returns, for isotropic and metric
sizing alike.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import BoundingBox, unit_square
from repro.geometry.batch import (
    bad_triangle_mask,
    circumcenter_batch,
    circumradius_sq_batch,
    incircle_batch,
    orient2d_batch,
    shortest_edge_sq_batch,
)
from repro.geometry.predicates import (
    circumcenter,
    circumradius_sq,
    dist_sq,
    incircle,
    orient2d,
)
from repro.mesh import Triangulation, triangulate_pslg
from repro.mesh.refine import (
    _BATCH_MIN,
    _scan_bad_triangles,
    _triangle_badness,
    find_bad_triangles,
    refine,
)
from repro.mesh.quality import metric_triangle_quality, triangle_quality
from repro.mesh.sizing import (
    MetricSizingField,
    boundary_layer_metric,
    constant_metric,
    sizing_from_spec,
)

coord = st.floats(
    min_value=-10.0, max_value=10.0,
    allow_nan=False, allow_infinity=False,
)
point = st.tuples(coord, coord)


def _random_points(n, seed):
    rng = random.Random(seed)
    return [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(n)]


# -------------------------------------------------- batch == scalar kernels
@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(point, point, point, point),
                min_size=1, max_size=20))
def test_incircle_batch_matches_scalar_when_certain(quads):
    a, b, c, d = (np.array([q[i] for q in quads]) for i in range(4))
    det, uncertain = incircle_batch(a, b, c, d)
    for k, (pa, pb, pc, pd) in enumerate(quads):
        if not uncertain[k]:
            exact = incircle(pa, pb, pc, pd)
            if exact != 0.0:
                # Compare signs directly: the product underflows to 0.0
                # for subnormal-range determinants.
                assert math.copysign(1.0, det[k]) == math.copysign(1.0, exact)
                assert det[k] != 0.0
            assert det[k] == pytest.approx(exact, rel=1e-9, abs=1e-30)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(point, point, point), min_size=1, max_size=20))
def test_orient2d_batch_matches_scalar_when_certain(tris):
    a, b, c = (np.array([t[i] for t in tris]) for i in range(3))
    det, uncertain = orient2d_batch(a, b, c)
    for k, (pa, pb, pc) in enumerate(tris):
        if not uncertain[k]:
            exact = orient2d(pa, pb, pc)
            if exact != 0.0:
                assert math.copysign(1.0, det[k]) == math.copysign(1.0, exact)
                assert det[k] != 0.0


def test_batch_flags_near_degenerate_as_uncertain():
    # Four near-cocircular points: the float filter must not pretend
    # certainty (the scalar path then settles it exactly).
    eps = 1e-16
    a = np.array([(0.0, 0.0)])
    b = np.array([(1.0, 0.0)])
    c = np.array([(1.0, 1.0)])
    d = np.array([(0.0, 1.0 + eps)])
    det, uncertain = incircle_batch(a, b, c, d)
    assert uncertain[0] or det[0] == pytest.approx(0.0, abs=1e-12)


def test_circumcenter_and_radius_batch_match_scalar():
    pts = _random_points(300, seed=11)
    tris = [tuple(pts[i:i + 3]) for i in range(0, 297, 3)
            if abs(orient2d(*pts[i:i + 3])) > 1e-12]
    a, b, c = (np.array([t[i] for t in tris]) for i in range(3))
    cc = circumcenter_batch(a, b, c)
    rr = circumradius_sq_batch(a, b, c)
    ss = shortest_edge_sq_batch(a, b, c)
    for k, (pa, pb, pc) in enumerate(tris):
        want = circumcenter(pa, pb, pc)
        assert cc[k][0] == pytest.approx(want[0], rel=1e-9, abs=1e-9)
        assert cc[k][1] == pytest.approx(want[1], rel=1e-9, abs=1e-9)
        assert rr[k] == pytest.approx(
            circumradius_sq(pa, pb, pc), rel=1e-9
        )
        assert ss[k] == pytest.approx(
            min(dist_sq(pa, pb), dist_sq(pb, pc), dist_sq(pc, pa)),
            rel=1e-12,
        )


def test_bad_triangle_mask_flags_skinny_not_equilateral():
    skinny = ((0.0, 0.0), (1.0, 0.0), (0.5, 0.01))
    good = ((0.0, 0.0), (1.0, 0.0), (0.5, math.sqrt(3) / 2))
    a, b, c = (np.array([skinny[i], good[i]]) for i in range(3))
    bad = bad_triangle_mask(a, b, c, quality_bound=2.0)
    assert bad[0] and not bad[1]


# ---------------------------------------------- batch == scalar full scan
def _triangulation_of(points):
    tri = Triangulation(BoundingBox(0, 0, 1, 1))
    for p in points:
        tri.insert_point(p)
    return tri


def _scalar_scan(tri, quality_sq, sizing, min_length_sq):
    return [
        (tid, verts)
        for tid in tri.alive_triangles()
        for verts in (tri.triangle_vertices(tid),)
        if not any(tri.is_super_vertex(v) for v in verts)
        and _triangle_badness(tri, verts, quality_sq, sizing, min_length_sq)
    ]


@pytest.mark.parametrize(
    "sizing",
    [
        None,
        sizing_from_spec(("uniform", 0.08)),
        sizing_from_spec(("point_source", [((0.3, 0.3), 0.03)], 0.2, 0.4)),
        sizing_from_spec(("metric", 0.3, 0.06, 30.0)),
        sizing_from_spec(("boundary_layer", 0.0, 0.04, 0.3, 0.3, 0.25)),
    ],
    ids=["none", "uniform", "graded", "metric", "boundary-layer"],
)
@pytest.mark.parametrize("seed", [1, 2])
def test_scan_batch_equals_scalar(sizing, seed):
    # Enough triangles to cross _BATCH_MIN so the numpy path runs.
    tri = _triangulation_of(_random_points(80, seed=seed))
    assert sum(1 for _ in tri.alive_triangles()) >= _BATCH_MIN
    got = _scan_bad_triangles(tri, 2.0 ** 2, sizing, 1e-12)
    want = _scalar_scan(tri, 2.0 ** 2, sizing, 1e-12)
    assert sorted(got) == sorted(want)


def test_scan_small_mesh_takes_scalar_path():
    tri = _triangulation_of(_random_points(5, seed=3))
    got = _scan_bad_triangles(tri, 2.0 ** 2, None, 1e-12)
    want = _scalar_scan(tri, 2.0 ** 2, None, 1e-12)
    assert sorted(got) == sorted(want)


# ------------------------------------------------------- metric sizing
def test_constant_metric_isotropic_size_is_geometric_mean():
    m = constant_metric(0.4, 0.1)
    # (det M)^(-1/4) = sqrt(h_along * h_across).
    assert m((0.5, 0.5)) == pytest.approx(math.sqrt(0.4 * 0.1))


def test_constant_metric_edge_length_is_directional():
    m = constant_metric(0.5, 0.05, angle_deg=0.0)
    along = m.edge_length((0.0, 0.0), (0.5, 0.0))
    across = m.edge_length((0.0, 0.0), (0.0, 0.5))
    assert along == pytest.approx(1.0)
    assert across == pytest.approx(10.0)


def test_metric_batch_hooks_match_scalar():
    m = boundary_layer_metric(0.0, 0.03, 0.3, 0.25, growth=0.25)
    pts = np.array(_random_points(50, seed=5))
    qts = np.array(_random_points(50, seed=6))
    h = m.h_batch(pts)
    el = m.edge_length_batch(pts, qts)
    for k in range(len(pts)):
        assert h[k] == pytest.approx(m(tuple(pts[k])), rel=1e-12)
        assert el[k] == pytest.approx(
            m.edge_length(tuple(pts[k]), tuple(qts[k])), rel=1e-12
        )


def test_metric_rejects_non_spd():
    bad = MetricSizingField(lambda p: (1.0, 2.0, 1.0))
    with pytest.raises(ValueError, match="not SPD"):
        bad((0.0, 0.0))


def test_metric_triangle_quality_prefers_stretched_elements():
    m = constant_metric(0.5, 0.05)
    stretched = ((0.0, 0.0), (0.5, 0.0), (0.25, 0.05))
    equilateral = ((0.0, 0.0), (0.5, 0.0), (0.25, 0.25 * math.sqrt(3)))
    assert metric_triangle_quality(*stretched, m) < metric_triangle_quality(
        *equilateral, m
    )
    # The isotropic measure ranks them the other way around.
    assert triangle_quality(*stretched) > triangle_quality(*equilateral)


def test_refine_with_metric_produces_anisotropic_mesh():
    tri = triangulate_pslg(unit_square())
    m = sizing_from_spec(("metric", 0.4, 0.08))
    refine(tri, sizing=m, min_length=1e-3)
    # The metric criterion itself is satisfied...
    assert find_bad_triangles(tri, sizing=m) == []
    # ...and the mesh is genuinely anisotropic: far more triangles than
    # the isotropic-equivalent h = sqrt(h_along * h_across) would need
    # alone implies the directional edge test did real work.
    count = 0
    for t in tri.triangles():
        pts = tri.coords(t)
        for u, v in ((0, 1), (1, 2), (2, 0)):
            assert m.edge_length(pts[u], pts[v]) <= 2.0 * m.edge_bound
        count += 1
    assert count > 0


def test_metric_spec_round_trips_through_sizing_from_spec():
    m = sizing_from_spec(("metric", 0.3, 0.06, 45.0, 1.2))
    assert m.edge_bound == 1.2
    assert m((0.1, 0.9)) == pytest.approx(math.sqrt(0.3 * 0.06))
    with pytest.raises(ValueError):
        sizing_from_spec(("warp", 1.0))
