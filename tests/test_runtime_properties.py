"""Property-based and failure-injection tests for the MRTS runtime.

These hammer the control/out-of-core layers with randomized workloads and
adversarial conditions, checking the invariants that make the runtime
trustworthy:

* message conservation — every posted message runs exactly once;
* termination — quiescence is always reached;
* determinism — identical inputs give identical virtual timelines;
* memory safety — budgets respected (modulo documented pinned-growth
  overruns), locked objects never evicted;
* state durability — spill/reload cycles never lose mutations.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CostModel,
    MobileObject,
    MRTS,
    MRTSConfig,
    handler,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Tally(MobileObject):
    """Counts invocations; optionally relays to keep traffic flowing."""

    def __init__(self, pointer, payload_bytes=256):
        super().__init__(pointer)
        self.count = 0
        self.payload = bytes(payload_bytes)

    @handler
    def hit(self, ctx, relay_to=None, hops=0):
        self.count += 1
        if relay_to is not None and hops > 0:
            ctx.post(relay_to, "hit", relay_to=self.pointer, hops=hops - 1)


def build(n_nodes, n_objects, memory, cores=1, scheme="lru"):
    cluster = ClusterSpec(
        n_nodes=n_nodes, node=NodeSpec(cores=cores, memory_bytes=memory)
    )
    rt = MRTS(cluster, config=MRTSConfig(swap_scheme=scheme))
    ptrs = [
        rt.create_object(Tally, node=k % n_nodes) for k in range(n_objects)
    ]
    return rt, ptrs


@settings(max_examples=15, deadline=None)
@given(
    plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),   # target object
            st.integers(min_value=0, max_value=3),   # relay hops
        ),
        min_size=1,
        max_size=40,
    ),
    n_nodes=st.integers(min_value=1, max_value=4),
    scheme=st.sampled_from(["lru", "lfu", "mru", "mu", "lu"]),
)
def test_message_conservation_under_random_storms(plan, n_nodes, scheme):
    """Every posted message (and every relay) executes exactly once."""
    rt, ptrs = build(n_nodes, 8, memory=1 << 22, scheme=scheme)
    expected = 0
    for target, hops in plan:
        rt.post(ptrs[target], "hit", relay_to=ptrs[(target + 1) % 8], hops=hops)
        expected += 1 + hops
    rt.run()
    total = sum(rt.get_object(p).count for p in ptrs)
    assert total == expected
    assert rt.termination.quiescent


@settings(max_examples=10, deadline=None)
@given(
    plan=st.lists(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=30
    )
)
def test_conservation_survives_heavy_spilling(plan):
    """Same invariant with memory so tight objects constantly spill."""
    cluster = ClusterSpec(
        n_nodes=2, node=NodeSpec(cores=1, memory_bytes=60_000)
    )
    rt = MRTS(cluster)
    ptrs = [
        rt.create_object(Tally, 15_000, node=k % 2) for k in range(6)
    ]
    for target in plan:
        rt.post(ptrs[target], "hit")
    rt.run()
    counts = [rt.get_object(p).count for p in ptrs]
    assert sum(counts) == len(plan)
    for k, p in enumerate(ptrs):
        assert counts[k] == plan.count(k)
    assert rt.stats.objects_stored > 0  # spilling really happened


def test_virtual_timeline_deterministic():
    """With modeled costs, the whole virtual timeline is a pure function
    of the input (the default cost model measures wall time, which isn't)."""

    class Fixed(CostModel):
        def handler_cost(self, obj, handler_name, msg):
            return 1e-3

    def one_run():
        cluster = ClusterSpec(
            n_nodes=3, node=NodeSpec(cores=1, memory_bytes=200_000)
        )
        rt = MRTS(cluster, cost_model=Fixed())
        ptrs = [rt.create_object(Tally, node=k % 3) for k in range(9)]
        for k, p in enumerate(ptrs):
            rt.post(p, "hit", relay_to=ptrs[(k + 4) % 9], hops=3)
        stats = rt.run()
        return (
            stats.total_time,
            stats.messages_sent,
            stats.objects_stored,
            rt.engine.events_processed,
        )

    assert one_run() == one_run()


def test_locked_objects_survive_arbitrary_pressure():
    rt, ptrs = build(1, 6, memory=120_000)
    # Objects are ~15 KB... make them heavier via posts after locking two.
    class FatModel(CostModel):
        def object_nbytes(self, obj):
            return 30_000

    rt.cost_model = FatModel()
    rt.nodes[0].ooc.lock(ptrs[0].oid)
    rt.nodes[0].ooc.lock(ptrs[1].oid)
    for _ in range(3):
        for p in ptrs:
            rt.post(p, "hit")
    rt.run()
    assert rt.nodes[0].ooc.is_resident(ptrs[0].oid)
    assert rt.nodes[0].ooc.is_resident(ptrs[1].oid)
    assert all(rt.get_object(p).count == 3 for p in ptrs)


def test_forced_eviction_midrun_preserves_state():
    """Failure injection: an adversary spills a hot object between phases;
    its state and pending work must survive."""
    rt, ptrs = build(1, 4, memory=1 << 22)
    for p in ptrs:
        rt.post(p, "hit")
    rt.run()
    victim = ptrs[0]
    nrt = rt.nodes[0]
    # Adversarial spill through the runtime's own machinery.
    rt._evict_now(nrt, victim.oid)
    assert not nrt.ooc.is_resident(victim.oid)
    rt.post(victim, "hit")
    rt.run()
    assert rt.get_object(victim).count == 2


def test_messages_to_destroyed_object_raise_cleanly():
    rt, ptrs = build(1, 2, memory=1 << 22)

    class Killer(MobileObject):
        @handler
        def kill(self, ctx, target):
            ctx.destroy(target)

    killer = rt.create_object(Killer)
    rt.post(killer, "kill", ptrs[0])
    rt.run()
    with pytest.raises(KeyError):
        rt.post(ptrs[0], "hit")


def test_run_twice_without_new_work_is_stable():
    rt, ptrs = build(2, 4, memory=1 << 22)
    rt.post(ptrs[0], "hit")
    first = rt.run().total_time
    second = rt.run().total_time
    assert second == first  # no phantom work appears


@settings(max_examples=8, deadline=None)
@given(cores=st.integers(min_value=1, max_value=4))
def test_more_cores_never_slow_down_compute_bound_work(cores):
    class Costly(CostModel):
        def handler_cost(self, obj, handler_name, msg):
            return 1.0

    def run_with(c):
        cluster = ClusterSpec(
            n_nodes=1, node=NodeSpec(cores=c, memory_bytes=1 << 22)
        )
        rt = MRTS(cluster, cost_model=Costly())
        ptrs = [rt.create_object(Tally) for _ in range(8)]
        for p in ptrs:
            rt.post(p, "hit")
        return rt.run().total_time

    assert run_with(cores) <= run_with(1) + 1e-9
