"""Tests for the batch scheduler simulator (Figure 1 substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Job, SchedulerSim, synthetic_job_mix, wait_time_by_width


def test_empty_cluster_starts_job_immediately():
    sched = SchedulerSim(n_nodes=16)
    jobs = [Job(0, arrival=5.0, nodes=8, runtime=100.0)]
    sched.run(jobs)
    assert jobs[0].start == 5.0
    assert jobs[0].wait == 0.0


def test_fcfs_waits_for_nodes():
    sched = SchedulerSim(n_nodes=4, discipline="fcfs")
    jobs = [
        Job(0, arrival=0.0, nodes=4, runtime=10.0),
        Job(1, arrival=1.0, nodes=4, runtime=10.0),
    ]
    sched.run(jobs)
    assert jobs[0].start == 0.0
    assert jobs[1].start == 10.0


def test_fcfs_blocks_small_job_behind_wide_head():
    """Under strict FCFS a 1-node job cannot jump a blocked 4-node job."""
    sched = SchedulerSim(n_nodes=4, discipline="fcfs")
    jobs = [
        Job(0, arrival=0.0, nodes=2, runtime=100.0),
        Job(1, arrival=1.0, nodes=4, runtime=10.0),   # blocked head
        Job(2, arrival=2.0, nodes=1, runtime=5.0),    # small, behind head
    ]
    sched.run(jobs)
    assert jobs[2].start >= jobs[1].start


def test_backfill_lets_small_job_jump():
    """EASY backfill starts the harmless small job immediately."""
    sched = SchedulerSim(n_nodes=4, discipline="backfill")
    jobs = [
        Job(0, arrival=0.0, nodes=2, runtime=100.0, walltime=100.0),
        Job(1, arrival=1.0, nodes=4, runtime=10.0, walltime=10.0),
        Job(2, arrival=2.0, nodes=1, runtime=5.0, walltime=5.0),
    ]
    sched.run(jobs)
    assert jobs[2].start == 2.0        # backfilled into the hole
    assert jobs[1].start == 100.0      # head job start unchanged


def test_backfill_never_delays_head_job():
    """A backfill candidate too long for the hole must wait."""
    sched = SchedulerSim(n_nodes=4, discipline="backfill")
    jobs = [
        Job(0, arrival=0.0, nodes=2, runtime=10.0, walltime=10.0),
        Job(1, arrival=1.0, nodes=4, runtime=10.0, walltime=10.0),
        # Needs 3 nodes (only 2 free) -> doesn't fit now at all.
        Job(2, arrival=2.0, nodes=3, runtime=50.0, walltime=50.0),
    ]
    sched.run(jobs)
    assert jobs[1].start == 10.0


def test_job_wider_than_cluster_rejected():
    sched = SchedulerSim(n_nodes=4)
    with pytest.raises(ValueError):
        sched.run([Job(0, arrival=0.0, nodes=8, runtime=1.0)])


def test_job_validation():
    with pytest.raises(ValueError):
        Job(0, arrival=0.0, nodes=0, runtime=1.0)
    with pytest.raises(ValueError):
        Job(0, arrival=0.0, nodes=1, runtime=0.0)


def test_walltime_defaults_to_runtime():
    job = Job(0, arrival=0.0, nodes=1, runtime=7.0)
    assert job.walltime == 7.0


def test_synthetic_mix_reproducible():
    a = synthetic_job_mix(n_jobs=50, seed=3)
    b = synthetic_job_mix(n_jobs=50, seed=3)
    assert [(j.nodes, j.runtime, j.arrival) for j in a] == [
        (j.nodes, j.runtime, j.arrival) for j in b
    ]


def test_synthetic_mix_respects_cluster_width():
    jobs = synthetic_job_mix(n_jobs=200, n_nodes=16, seed=1)
    assert max(j.nodes for j in jobs) <= 16


def test_wait_time_by_width_groups():
    jobs = [
        Job(0, 0.0, 1, 10.0),
        Job(1, 0.0, 2, 10.0),
        Job(2, 0.0, 1, 10.0),
    ]
    for j in jobs:
        j.start = j.arrival + j.nodes  # fake
    waits = wait_time_by_width(jobs)
    assert waits == {1: 1.0, 2: 2.0}


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_schedule_invariants(seed):
    """Property: no job starts before arrival; capacity never exceeded."""
    jobs = synthetic_job_mix(n_jobs=120, n_nodes=32, load=0.9, seed=seed)
    SchedulerSim(n_nodes=32, discipline="backfill").run(jobs)
    events = []
    for j in jobs:
        assert j.start >= j.arrival
        events.append((j.start, j.nodes))
        events.append((j.start + j.runtime, -j.nodes))
    in_use = 0
    # At identical times, process releases (negative deltas) before starts.
    for _, delta in sorted(events, key=lambda e: (e[0], 0 if e[1] < 0 else 1)):
        in_use += delta
        assert in_use <= 32


def test_wide_jobs_wait_longer_on_busy_cluster():
    """The Figure 1 phenomenon: mean wait grows with requested width."""
    jobs = synthetic_job_mix(n_jobs=1500, n_nodes=128, load=0.9, seed=7)
    SchedulerSim(n_nodes=128, discipline="backfill").run(jobs)
    waits = wait_time_by_width(jobs)
    narrow = waits[1]
    wide = waits[max(waits)]
    assert wide > narrow
