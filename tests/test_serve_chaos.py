"""The service chaos cell: kill a job mid-phase, resume it, same mesh.

``serve-kill-midjob`` drives the job manager with a kill hook that
crashes attempt 1 mid-phase (after the configured boundary), then lets
attempt 2 resume from the boundary checkpoint.  The oracle is the same
exact-equality one as the soak's: the resumed job's final-state digest
must equal an uninterrupted solo run of the identical spec — a resume
that silently restarted, skipped work, or corrupted spilled state
cannot pass.
"""

import pytest

from repro.serve.jobs import JobManager
from repro.serve.meshjob import JobSpec, run_job_solo
from repro.testing.chaos import (
    SERVE_CHAOS_MATRIX,
    run_serve_chaos_case,
    run_serve_chaos_matrix,
)


@pytest.mark.parametrize("spec", SERVE_CHAOS_MATRIX, ids=lambda s: s.name)
def test_serve_chaos_cell(spec):
    report = run_serve_chaos_case(spec)
    assert report.ok, report.problems
    assert report.state_matches
    assert report.restarts == 1      # killed exactly once, resumed once
    assert not report.violations


def test_serve_chaos_matrix_is_wired():
    reports = run_serve_chaos_matrix()
    assert [r.name for r in reports] == [s.name for s in SERVE_CHAOS_MATRIX]
    assert all(r.ok for r in reports)


def test_kill_without_checkpoints_restarts_from_scratch():
    """checkpoint_every=0 disables snapshots: the retry still converges
    (fresh start) and still matches solo — resume is an optimisation,
    never a correctness requirement."""
    body = dict(SERVE_CHAOS_MATRIX[0].job, checkpoint_every=0)
    spec = JobSpec.from_request(body)
    reference = run_job_solo(spec)

    kills = []

    def kill_hook(job, attempt):
        if attempt == 1:
            kills.append(job.job_id)
            return 2
        return None

    mgr = JobManager(workers=1, keep_runtimes=True, kill_hook=kill_hook)
    try:
        job = mgr.submit(spec)
        assert mgr.drain(timeout=120.0)
        assert kills, "kill hook never fired"
        assert job.state == "finished"
        assert job.attempts == 2
        assert job.checkpoint is None  # nothing was ever snapshotted
        assert job.runner.state_digest() == reference.state_digest()
    finally:
        mgr.shutdown(drain=False)


def test_repeated_kills_exhaust_attempts():
    """A job killed on every attempt fails terminally (and releases its
    reservation) instead of looping forever."""
    spec = JobSpec.from_request(SERVE_CHAOS_MATRIX[0].job)
    mgr = JobManager(workers=1, max_attempts=2,
                     kill_hook=lambda job, attempt: 2)
    try:
        job = mgr.submit(spec)
        assert mgr.drain(timeout=120.0)
        assert job.state == "failed"
        assert job.attempts == 2
        assert "out of attempts" in job.error
        assert mgr.admission.reserved_bytes == 0
    finally:
        mgr.shutdown(drain=False)
