"""Tests for the discrete-event kernel: ordering, processes, combinators."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Engine, Interrupt, all_of, any_of


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    eng.timeout(5.0)
    eng.run()
    assert eng.now == 5.0


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    for delay in (3.0, 1.0, 2.0):
        ev = eng.timeout(delay, value=delay)
        ev.add_callback(lambda e: fired.append(e.value))
    eng.run()
    assert fired == [1.0, 2.0, 3.0]


def test_simultaneous_events_fifo():
    """Ties at equal times break by scheduling order (determinism)."""
    eng = Engine()
    fired = []
    for i in range(10):
        ev = eng.timeout(1.0, value=i)
        ev.add_callback(lambda e: fired.append(e.value))
    eng.run()
    assert fired == list(range(10))


def test_process_waits_and_returns():
    eng = Engine()

    def body():
        yield eng.timeout(2.0)
        yield eng.timeout(3.0)
        return "done"

    proc = eng.process(body())
    result = eng.run(until=proc)
    assert result == "done"
    assert eng.now == 5.0


def test_process_receives_event_value():
    eng = Engine()
    seen = []

    def body():
        value = yield eng.timeout(1.0, value=42)
        seen.append(value)

    eng.process(body())
    eng.run()
    assert seen == [42]


def test_processes_can_join():
    eng = Engine()

    def child():
        yield eng.timeout(4.0)
        return 7

    def parent():
        value = yield eng.process(child())
        return value + 1

    proc = eng.process(parent())
    assert eng.run(until=proc) == 8
    assert eng.now == 4.0


def test_event_succeed_wakes_waiter():
    eng = Engine()
    gate = eng.event()
    log = []

    def waiter():
        value = yield gate
        log.append((eng.now, value))

    def opener():
        yield eng.timeout(9.0)
        gate.succeed("open")

    eng.process(waiter())
    eng.process(opener())
    eng.run()
    assert log == [(9.0, "open")]


def test_event_fail_raises_in_waiter():
    eng = Engine()
    gate = eng.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    eng.process(waiter())
    gate.fail(ValueError("boom"))
    eng.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_run_until_time_stops_clock():
    eng = Engine()
    eng.timeout(10.0)
    eng.run(until=4.0)
    assert eng.now == 4.0
    eng.run()
    assert eng.now == 10.0


def test_run_until_unfired_event_deadlocks():
    eng = Engine()
    gate = eng.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        eng.run(until=gate)


def test_interrupt_process():
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield eng.timeout(100.0)
            log.append("completed")
        except Interrupt as intr:
            log.append(("interrupted", eng.now, intr.cause))

    def interrupter(target):
        yield eng.timeout(5.0)
        target.interrupt("wakeup")

    proc = eng.process(sleeper())
    eng.process(interrupter(proc))
    eng.run()
    assert log == [("interrupted", 5.0, "wakeup")]


def test_interrupt_after_completion_is_noop():
    eng = Engine()

    def quick():
        yield eng.timeout(1.0)

    proc = eng.process(quick())
    eng.run()
    proc.interrupt()  # must not raise
    eng.run()


def test_all_of_collects_values():
    eng = Engine()
    events = [eng.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
    combo = all_of(eng, events)
    assert eng.run(until=combo) == [3.0, 1.0, 2.0]
    assert eng.now == 3.0


def test_all_of_empty_fires_immediately():
    eng = Engine()
    combo = all_of(eng, [])
    assert eng.run(until=combo) == []


def test_any_of_returns_first():
    eng = Engine()
    events = [eng.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
    combo = any_of(eng, events)
    index, value = eng.run(until=combo)
    assert (index, value) == (1, 1.0)
    assert eng.now == 1.0


def test_any_of_empty_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        any_of(eng, [])


def test_yield_non_event_is_type_error():
    eng = Engine()

    def bad():
        yield 42

    eng.process(bad())
    with pytest.raises(TypeError):
        eng.run()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_clock_is_monotonic_under_arbitrary_timeouts(delays):
    """Property: processing any set of timeouts never moves time backwards."""
    eng = Engine()
    observed = []
    for d in delays:
        eng.timeout(d).add_callback(lambda e: observed.append(eng.now))
    eng.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert eng.now == max(delays)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_nested_process_end_times(pairs):
    """Property: a process sleeping a then b ends exactly at a+b."""
    eng = Engine()
    results = []

    def body(a, b):
        yield eng.timeout(a)
        yield eng.timeout(b)
        results.append(eng.now)

    starts = []
    for a, b in pairs:
        starts.append((a, b))
        eng.process(body(a, b))
    eng.run()
    assert sorted(results) == sorted(a + b for a, b in starts)
