"""Tests for Triangle-format I/O and SVG rendering."""

import io

import pytest

from repro.geometry import pipe_cross_section, unit_square
from repro.mesh import refine, triangulate_pslg, uniform_sizing
from repro.mesh.meshio import (
    mesh_to_svg,
    read_mesh,
    read_poly,
    write_ele,
    write_mesh,
    write_node,
    write_poly,
)


def _mesh(h=0.25):
    tri = triangulate_pslg(unit_square())
    refine(tri, sizing=uniform_sizing(h))
    return tri


# -------------------------------------------------------------------- .poly
def test_poly_roundtrip_square():
    buf = io.StringIO()
    write_poly(unit_square(), buf)
    clone = read_poly(io.StringIO(buf.getvalue()))
    assert clone.vertices == unit_square().vertices
    assert clone.segments == unit_square().segments
    assert clone.holes == []


def test_poly_roundtrip_with_holes():
    pslg = pipe_cross_section(n=12)
    buf = io.StringIO()
    write_poly(pslg, buf)
    clone = read_poly(io.StringIO(buf.getvalue()))
    assert clone.vertices == pslg.vertices
    assert sorted(clone.segments) == sorted(pslg.segments)
    assert clone.holes == pslg.holes
    clone.validate()


def test_poly_roundtrip_exact_floats():
    """repr-based writing must preserve coordinates bit-for-bit."""
    pslg = pipe_cross_section(n=16)
    buf = io.StringIO()
    write_poly(pslg, buf)
    clone = read_poly(io.StringIO(buf.getvalue()))
    for (x1, y1), (x2, y2) in zip(pslg.vertices, clone.vertices):
        assert x1 == x2 and y1 == y2


def test_poly_files_on_disk(tmp_path):
    path = tmp_path / "square.poly"
    write_poly(unit_square(), path)
    assert read_poly(path).segments == unit_square().segments


def test_read_poly_handles_comments_and_blanks():
    text = """# comment
4 2 0 0

1 0.0 0.0
2 1.0 0.0  # trailing comment
3 1.0 1.0
4 0.0 1.0
4 0
1 1 2
2 2 3
3 3 4
4 4 1
0
"""
    pslg = read_poly(io.StringIO(text))
    assert len(pslg.vertices) == 4
    assert len(pslg.segments) == 4


def test_read_empty_poly_raises():
    with pytest.raises(ValueError):
        read_poly(io.StringIO("# nothing\n"))


# --------------------------------------------------------------- .node/.ele
def test_mesh_roundtrip():
    tri = _mesh()
    node_buf, ele_buf = io.StringIO(), io.StringIO()
    write_mesh(tri, node_buf, ele_buf)
    points, triangles = read_mesh(
        io.StringIO(node_buf.getvalue()), io.StringIO(ele_buf.getvalue())
    )
    assert len(points) == tri.n_vertices
    assert len(triangles) == tri.n_triangles
    # All indices valid and triangles non-degenerate.
    for a, b, c in triangles:
        assert len({a, b, c}) == 3
        assert 0 <= max(a, b, c) < len(points)


def test_mesh_roundtrip_point_set_identical():
    tri = _mesh(h=0.3)
    node_buf, ele_buf = io.StringIO(), io.StringIO()
    write_mesh(tri, node_buf, ele_buf)
    points, _ = read_mesh(
        io.StringIO(node_buf.getvalue()), io.StringIO(ele_buf.getvalue())
    )
    original = {tri.vertex(v) for t in tri.triangles() for v in t}
    assert set(points) == original


def test_write_node_ele_shapes():
    node_buf, ele_buf = io.StringIO(), io.StringIO()
    write_node([(0.0, 0.0), (1.0, 0.0)], node_buf)
    write_ele([(0, 1, 0)], ele_buf)  # content not validated by writer
    assert node_buf.getvalue().splitlines()[0] == "2 2 0 0"
    assert ele_buf.getvalue().splitlines()[0] == "1 3 0"


# ---------------------------------------------------------------------- SVG
def test_svg_contains_all_triangles():
    tri = _mesh()
    svg = mesh_to_svg(tri)
    assert svg.count("<polygon") == tri.n_triangles
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")


def test_svg_writes_to_file(tmp_path):
    tri = _mesh()
    path = tmp_path / "mesh.svg"
    mesh_to_svg(tri, path)
    assert path.read_text().count("<polygon") == tri.n_triangles


def test_svg_custom_colors():
    tri = _mesh(h=0.5)
    tris = list(tri.triangles())
    colors = {tris[0]: "#ff0000"}
    svg = mesh_to_svg(tri, color_of=colors)
    assert "#ff0000" in svg


def test_svg_empty_mesh_raises():
    from repro.geometry.pslg import BoundingBox
    from repro.mesh import Triangulation

    empty = Triangulation(BoundingBox(0, 0, 1, 1))
    # Only super-triangles exist: no real triangles to draw.
    with pytest.raises(ValueError):
        mesh_to_svg(empty)
