"""Tests for the Experiment row/table container."""

import pytest

from repro.evalsim.report import Experiment


def _sample():
    exp = Experiment(
        exp_id="table4",
        title="Overlap on 8 PEs",
        headers=("size", "overlap_pct"),
        paper_claim="overlap reaches 62%",
    )
    exp.add(10_000, 40.0)
    exp.add(100_000, 62.0)
    return exp


def test_add_appends_rows_in_order():
    exp = _sample()
    assert len(exp.rows) == 2
    assert exp.rows[0] == (10_000, 40.0)
    assert exp.rows[1] == (100_000, 62.0)


def test_column_extracts_by_header_name():
    exp = _sample()
    assert exp.column("size") == [10_000, 100_000]
    assert exp.column("overlap_pct") == [40.0, 62.0]


def test_column_unknown_header_raises():
    with pytest.raises(ValueError):
        _sample().column("nope")


def test_render_includes_id_title_claim_and_data():
    text = _sample().render()
    assert "table4" in text
    assert "Overlap on 8 PEs" in text
    assert "overlap reaches 62%" in text
    assert "100000" in text
    for header in ("size", "overlap_pct"):
        assert header in text


def test_render_without_claim_omits_paper_line():
    exp = Experiment("fig1", "speed", headers=("x",))
    exp.add(1)
    assert "paper:" not in exp.render()
