"""Property tests for the checksummed storage frame codec.

The self-healing storage layer wraps every stored object in a
``MRF2 | flags | length | CRC32`` frame (see :mod:`repro.core.storage`;
legacy ``MRF1 | length | CRC32`` frames still decode).  The codec's
contract is binary-exact, so we state it as properties and let
hypothesis hunt for counterexamples:

* round-trip identity for arbitrary payloads (including empty and huge);
* every *strict prefix* of a frame — the on-disk residue of a torn
  write — is rejected with :class:`CorruptObject`, never silently
  decoded;
* any single-byte mutation anywhere in the frame is rejected.
"""

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.storage import (
    FRAME_OVERHEAD,
    _FRAME_HEADER,
    _FRAME_MAGIC,
    decode_frame,
    encode_frame,
)
from repro.util.errors import CorruptObject

PAYLOADS = st.binary(min_size=0, max_size=512)


# ------------------------------------------------------------- round trip
@given(payload=PAYLOADS)
def test_round_trip_identity(payload):
    assert decode_frame(encode_frame(payload)) == payload


@given(payload=PAYLOADS)
def test_frame_overhead_is_constant(payload):
    assert len(encode_frame(payload)) == len(payload) + FRAME_OVERHEAD


def test_round_trip_large_payload():
    payload = bytes(range(256)) * 4096  # 1 MiB
    assert decode_frame(encode_frame(payload)) == payload


def test_frame_layout_is_the_documented_one():
    payload = b"hello mesh"
    frame = encode_frame(payload)
    magic, flags, length, crc = _FRAME_HEADER.unpack(frame[:FRAME_OVERHEAD])
    assert magic == _FRAME_MAGIC
    assert flags == 0
    assert length == len(payload)
    # The CRC covers the flags byte and the payload, so a flipped flags
    # byte is caught like any other mutation.
    assert crc == zlib.crc32(payload, zlib.crc32(b"\x00"))
    assert frame[FRAME_OVERHEAD:] == payload


def test_flags_round_trip_and_range():
    from repro.core.storage import FLAG_COMPRESSED, FLAG_DELTA, decode_frame_ex

    for flags in (0, FLAG_COMPRESSED, FLAG_DELTA, FLAG_COMPRESSED | FLAG_DELTA):
        payload, got = decode_frame_ex(encode_frame(b"abc", flags))
        assert (payload, got) == (b"abc", flags)
    with pytest.raises(ValueError):
        encode_frame(b"abc", 0x100)
    with pytest.raises(ValueError):
        encode_frame(b"abc", -1)


def test_legacy_mrf1_frames_still_decode():
    import struct

    payload = b"old format"
    legacy = struct.Struct("<4sQI").pack(
        b"MRF1", len(payload), zlib.crc32(payload)
    ) + payload
    assert decode_frame(legacy) == payload
    # A corrupt legacy frame is still rejected.
    bad = bytearray(legacy)
    bad[-1] ^= 0xFF
    with pytest.raises(CorruptObject):
        decode_frame(bytes(bad))


# ------------------------------------------------------------- torn writes
@given(payload=PAYLOADS, data=st.data())
def test_every_strict_prefix_is_rejected(payload, data):
    frame = encode_frame(payload)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1),
                    label="cut")
    with pytest.raises(CorruptObject):
        decode_frame(frame[:cut])


@settings(max_examples=25)
@given(payload=st.binary(min_size=0, max_size=48))
def test_all_strict_prefixes_exhaustively(payload):
    """Small frames: check *all* prefixes, not a sampled one."""
    frame = encode_frame(payload)
    for cut in range(len(frame)):
        with pytest.raises(CorruptObject):
            decode_frame(frame[:cut])


# --------------------------------------------------------------- bit rot
@given(payload=PAYLOADS, data=st.data())
def test_single_byte_mutation_is_rejected(payload, data):
    frame = bytearray(encode_frame(payload))
    pos = data.draw(st.integers(min_value=0, max_value=len(frame) - 1),
                    label="pos")
    delta = data.draw(st.integers(min_value=1, max_value=255), label="delta")
    frame[pos] = (frame[pos] + delta) % 256
    with pytest.raises(CorruptObject):
        decode_frame(bytes(frame))


@given(payload=PAYLOADS, tail=st.binary(min_size=1, max_size=16))
def test_trailing_garbage_is_rejected(payload, tail):
    """A frame followed by extra bytes means the stored length lies."""
    with pytest.raises(CorruptObject):
        decode_frame(encode_frame(payload) + tail)


def test_wrong_magic_is_rejected():
    frame = bytearray(encode_frame(b"payload"))
    frame[:4] = b"JUNK"
    with pytest.raises(CorruptObject, match="bad frame magic"):
        decode_frame(bytes(frame))


def test_context_appears_in_error_message():
    with pytest.raises(CorruptObject, match="checkpoint"):
        decode_frame(b"", context="checkpoint")
