"""Property tests: OOCLayer's incremental victim ranking == full-sort oracle.

The out-of-core layer replaced its O(n log n) per-plan sort with a merge of
two incremental streams (the pressure tier's lazy heap and the swap
scheme's own index).  These tests drive a real :class:`OOCLayer` through
random interleavings of every operation that touches the ranking state —
admit, touch, forget, evict, load, priority hints, queue-length updates,
locks — and require that ``eviction_candidates()`` stays byte-identical to
the reference definition: a full sort of the resident, unlocked records on
``(effective priority, log-replay scheme score, oid)``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MRTSConfig
from repro.core.ooc import OOCLayer
from repro.core.swapping import make_scheme
from repro.testing.models import make_reference

SCHEMES = ["lru", "mru", "lfu", "mu", "lu"]

OIDS = st.integers(min_value=0, max_value=7)

op = st.one_of(
    st.tuples(st.just("admit"), OIDS),
    st.tuples(st.just("touch"), OIDS),
    st.tuples(st.just("forget"), OIDS),
    st.tuples(st.just("evict"), OIDS),
    st.tuples(st.just("evict_best"), st.just(0)),
    st.tuples(st.just("load"), OIDS),
    st.tuples(st.just("prio"), OIDS, st.sampled_from([0.0, 0.5, 1.0, 2.0])),
    st.tuples(st.just("queue"), OIDS, st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("lock"), OIDS),
    st.tuples(st.just("unlock"), OIDS),
    st.tuples(st.just("rank"), OIDS),
)


def oracle_order(ooc, model, protect=()):
    """The pre-refactor reference: full sort of evictable residents."""
    clock, last, count = model._replay()
    ranked = sorted(
        (
            (
                rec.priority + rec.queued_messages,
                model._score_from(oid, clock, last, count),
                oid,
            )
            for oid, rec in ooc.table.items()
            if rec.resident and not rec.locked and oid not in protect
        )
    )
    return [oid for _, _, oid in ranked]


def apply_op(ooc, model, action):
    """Interpret one op, skipping it when invalid in the current state.

    Validity is a deterministic function of the op prefix, so Hypothesis
    shrinking stays sound.  The reference model's event log only mirrors
    scheme-visible events: admit and load touch (as the layer does), evict
    and priority changes do not.
    """
    kind, oid = action[0], action[1]
    rec = ooc.table.get(oid)
    resident = rec is not None and rec.resident
    if kind == "admit":
        if rec is None:
            assert ooc.admit(oid, 100) == []  # budget is never the constraint
            ooc.confirm_admit(oid)
            model.touch(oid)
    elif kind == "touch":
        if rec is not None:
            ooc.touch(oid)
            model.touch(oid)
    elif kind == "forget":
        if rec is not None and not rec.locked:
            ooc.forget(oid)
            model.forget(oid)
    elif kind == "evict":
        if resident and not rec.locked:
            ooc.confirm_evict(oid)
    elif kind == "evict_best":
        victims = ooc.eviction_candidates()
        if victims:
            ooc.confirm_evict(victims[0])
    elif kind == "load":
        if rec is not None and not rec.resident:
            ooc.confirm_load(oid)
            model.touch(oid)  # confirm_load touches on re-entry
    elif kind == "prio":
        if rec is not None:
            ooc.set_priority(oid, action[2])
    elif kind == "queue":
        if rec is not None:
            ooc.set_queue_length(oid, action[2])
    elif kind == "lock":
        if resident:
            ooc.lock(oid)
    elif kind == "unlock":
        if rec is not None and rec.locked:
            ooc.unlock(oid)
    elif kind == "rank":
        assert ooc.eviction_candidates() == oracle_order(ooc, model)
        protect = {oid}
        assert ooc.eviction_candidates(protect) == oracle_order(
            ooc, model, protect
        )


@pytest.mark.parametrize("name", SCHEMES)
@settings(max_examples=60, deadline=None)
@given(ops=st.lists(op, min_size=1, max_size=60))
def test_incremental_ranking_matches_full_sort_oracle(name, ops):
    ooc = OOCLayer(
        MRTSConfig(swap_scheme=name), scheme=make_scheme(name), budget=1 << 30
    )
    model = make_reference(name)
    for action in ops:
        apply_op(ooc, model, action)
    assert ooc.eviction_candidates() == oracle_order(ooc, model)


@pytest.mark.parametrize("name", SCHEMES)
def test_ranking_query_is_pure(name):
    """Iterating candidates must not perturb the ranking state."""
    ooc = OOCLayer(
        MRTSConfig(swap_scheme=name), scheme=make_scheme(name), budget=1 << 30
    )
    model = make_reference(name)
    for oid in range(6):
        apply_op(ooc, model, ("admit", oid))
    for oid in (3, 1, 3, 5):
        apply_op(ooc, model, ("touch", oid))
    apply_op(ooc, model, ("prio", 2, 1.0))
    apply_op(ooc, model, ("queue", 4, 2))
    first = ooc.eviction_candidates()
    for _ in range(3):
        assert ooc.eviction_candidates() == first
    assert first == oracle_order(ooc, model)
