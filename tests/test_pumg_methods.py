"""End-to-end tests for UPDR, NUPDR, PCDM and their out-of-core variants.

These are the integration tests of the whole stack: decomposition + MRTS +
patch meshing.  Scale is kept small (hundreds of triangles) so the suite
stays fast; the paper-scale behaviour is exercised by `repro.evalsim`.
"""

import math

import pytest

from repro.core import MRTSConfig, FileBackend
from repro.geometry import unit_square, pipe_cross_section
from repro.mesh import find_bad_triangles
from repro.mesh.sizing import sizing_from_spec
from repro.pumg import (
    ONUPDROptions,
    default_cluster,
    run_nupdr,
    run_pcdm,
    run_updr,
    sequential_mesh,
)

GRADED = ("point_source", [((0.0, 0.0), 0.03)], 0.25, 0.3)


# ---------------------------------------------------------------------- UPDR
def test_updr_meets_sizing_and_quality():
    res = run_updr(unit_square(), h=0.1, nx=3, ny=3)
    assert res.quality.min_angle_deg > 18.0
    assert find_bad_triangles(
        res.final_mesh, sizing=sizing_from_spec(("uniform", 0.1))
    ) == []
    assert res.quality.total_area == pytest.approx(1.0, rel=1e-6)


def test_updr_comparable_to_sequential():
    seq = sequential_mesh(unit_square(), ("uniform", 0.1))
    res = run_updr(unit_square(), h=0.1, nx=3, ny=3)
    # Parallel refinement produces a similar-size mesh (within 2.5x; the
    # patchwork inserts somewhat more points than the greedy sequential).
    assert seq.n_vertices * 0.5 <= res.n_points <= seq.n_vertices * 2.5


def test_updr_uses_color_phases():
    res = run_updr(unit_square(), h=0.12, nx=2, ny=2)
    assert res.extras["phases"] >= 2
    assert res.extras["launches"] >= 4


def test_updr_runs_multinode():
    res = run_updr(
        unit_square(), h=0.12, nx=3, ny=3, cluster=default_cluster(n_nodes=3)
    )
    assert res.stats.messages_sent > 0
    assert res.quality.min_angle_deg > 18.0


# --------------------------------------------------------------------- NUPDR
def test_nupdr_graded_mesh_complete():
    res = run_nupdr(unit_square(), GRADED, granularity=6.0)
    assert find_bad_triangles(
        res.final_mesh, sizing=sizing_from_spec(GRADED)
    ) == []
    assert res.quality.min_angle_deg > 18.0
    assert res.extras["n_leaves"] > 1


def test_nupdr_leaf_count_tracks_granularity():
    coarse = run_nupdr(unit_square(), GRADED, granularity=8.0)
    fine = run_nupdr(unit_square(), GRADED, granularity=4.0)
    assert fine.extras["n_leaves"] > coarse.extras["n_leaves"]


def test_nupdr_multicast_variant_matches():
    plain = run_nupdr(unit_square(), GRADED, granularity=6.0)
    mcast = run_nupdr(
        unit_square(), GRADED, granularity=6.0,
        options=ONUPDROptions(multicast=True),
    )
    assert find_bad_triangles(
        mcast.final_mesh, sizing=sizing_from_spec(GRADED)
    ) == []
    # Same order of work regardless of collection mechanism.
    assert abs(mcast.n_points - plain.n_points) <= max(10, plain.n_points)


def test_nupdr_optimizations_off_still_correct():
    options = ONUPDROptions(
        lock_queue=False,
        direct_calls=False,
        reorder_queue=False,
        priorities=False,
    )
    res = run_nupdr(unit_square(), GRADED, granularity=6.0, options=options)
    assert find_bad_triangles(
        res.final_mesh, sizing=sizing_from_spec(GRADED)
    ) == []


def test_nupdr_queue_protocol_counters():
    res = run_nupdr(unit_square(), GRADED, granularity=6.0)
    assert res.extras["dispatches"] == res.extras["updates"]
    assert res.extras["dispatches"] >= res.extras["n_leaves"]


# ---------------------------------------------------------------------- PCDM
def test_pcdm_subdomains_meet_quality():
    res = run_pcdm(unit_square(), h=0.08, n_parts=4)
    assert res.extras["min_angle_deg"] > 18.0
    assert res.n_triangles > 50


def test_pcdm_interfaces_conform():
    """The defining property: both sides of an interface share identical
    subsegment sets (hence identical vertices) after refinement."""
    res = run_pcdm(unit_square(), h=0.08, n_parts=4)
    objs = res.extras["subdomain_objects"]
    by_pair = {}
    for obj in objs:
        for key, neighbor in obj.interface.items():
            pair = (min(obj.part_id, neighbor), max(obj.part_id, neighbor))
            by_pair.setdefault(pair, {}).setdefault(obj.part_id, set()).add(key)
    assert by_pair, "expected at least one interface"
    for pair, sides in by_pair.items():
        assert len(sides) == 2, f"interface {pair} tracked on one side only"
        a, b = pair
        assert sides[a] == sides[b], f"interface {pair} does not conform"


def test_pcdm_sends_split_messages():
    res = run_pcdm(unit_square(), h=0.06, n_parts=4)
    assert res.extras["splits_sent"] > 0


def test_pcdm_total_size_comparable_to_sequential():
    seq = sequential_mesh(unit_square(), ("uniform", 0.08))
    res = run_pcdm(unit_square(), h=0.08, n_parts=4)
    assert seq.n_triangles * 0.5 <= res.n_triangles <= seq.n_triangles * 2.5


def test_pcdm_on_pipe_geometry():
    res = run_pcdm(pipe_cross_section(24), h=0.15, n_parts=4)
    assert res.extras["min_angle_deg"] > 15.0
    area = math.pi * (1.0**2 - 0.45**2)
    # Sum of subdomain triangle counts must cover the annulus roughly.
    assert res.n_triangles > 50


# -------------------------------------------------------------- out-of-core
def test_onupdr_out_of_core_spills_and_completes():
    """The headline capability: same app, tiny memory, must spill to disk
    and still produce the complete mesh."""
    cluster = default_cluster(n_nodes=2, cores=1, memory_bytes=20_000)
    res = run_nupdr(
        unit_square(), GRADED, granularity=4.0, cluster=cluster
    )
    assert res.stats.objects_stored > 0
    assert res.stats.objects_loaded > 0
    assert find_bad_triangles(
        res.final_mesh, sizing=sizing_from_spec(GRADED)
    ) == []


def test_oupdr_out_of_core_with_real_files(tmp_path):
    backends = {}

    def factory(rank):
        backends[rank] = FileBackend(tmp_path / f"node{rank}")
        return backends[rank]

    cluster = default_cluster(n_nodes=2, cores=1, memory_bytes=30_000)
    res = run_updr(
        unit_square(), h=0.1, nx=3, ny=3, cluster=cluster,
        storage_factory=factory,
    )
    assert res.stats.objects_stored > 0
    assert res.quality.min_angle_deg > 18.0


def test_opcdm_out_of_core():
    cluster = default_cluster(n_nodes=2, cores=1, memory_bytes=40_000)
    res = run_pcdm(unit_square(), h=0.08, n_parts=6, cluster=cluster)
    assert res.stats.objects_stored > 0
    assert res.extras["min_angle_deg"] > 18.0


def test_out_of_core_result_matches_in_core():
    """Spilling must not change the computation's *outcome*: the mesh is
    complete and of comparable size.  (Exact point sets may differ — swap
    timing legitimately reorders refinements, like thread timing would.)"""
    in_core = run_nupdr(unit_square(), GRADED, granularity=6.0)
    ooc = run_nupdr(
        unit_square(), GRADED, granularity=6.0,
        cluster=default_cluster(n_nodes=2, cores=2, memory_bytes=20_000),
    )
    assert ooc.stats.objects_stored > 0
    assert find_bad_triangles(
        ooc.final_mesh, sizing=sizing_from_spec(GRADED)
    ) == []
    assert abs(ooc.n_points - in_core.n_points) <= max(15, in_core.n_points // 2)
