"""Tests for fanout multicast (the ghost-exchange push primitive).

Covers delivery semantics (every target, no gather migration), the
control-layer batching contract (one wire send per destination node
regardless of subscriber count), interaction with migration via
stale-hint forwarding, and speculation (a fanout buffered in a
speculative outbox dispatches exactly once, at commit).
"""

import pytest

from repro.core import MobileObject, MRTS, handler
from repro.core.config import MRTSConfig
from repro.core.messages import Message, MulticastMessage
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Leaf(MobileObject):
    def __init__(self, ptr):
        super().__init__(ptr)
        self.hits = 0
        self.payloads = []

    @handler
    def poke(self, ctx, payload=None):
        self.hits += 1
        self.payloads.append(payload)


class Root(MobileObject):
    @handler
    def fan(self, ctx, leaves, payload=None):
        ctx.post_multicast(leaves, "poke", 1, payload, mode="fanout")

    @handler
    def fan_spec(self, ctx, leaves, payload=None):
        # Executed speculatively, the fanout lands in the record's
        # outbox and must only reach the leaves if the record commits.
        ctx.post_multicast(leaves, "poke", 1, payload, mode="fanout")


def small_cluster(n_nodes=2, cores=1, memory=1 << 22):
    return ClusterSpec(
        n_nodes=n_nodes, node=NodeSpec(cores=cores, memory_bytes=memory)
    )


def test_fanout_delivers_to_every_target():
    rt = MRTS(small_cluster(2))
    leaves = [rt.create_object(Leaf, node=k % 2) for k in range(5)]
    root = rt.create_object(Root, node=0)
    rt.post(root, "fan", leaves, "strip")
    rt.run()
    for p in leaves:
        obj = rt.get_object(p)
        assert obj.hits == 1
        assert obj.payloads == ["strip"]


def test_fanout_does_not_gather_targets():
    """Unlike collect mode, fanout must leave every target in place."""
    rt = MRTS(small_cluster(3))
    leaves = [rt.create_object(Leaf, node=k % 3) for k in range(6)]
    root = rt.create_object(Root, node=0)
    rt.post(root, "fan", leaves)
    rt.run()
    for k, p in enumerate(leaves):
        assert rt.object_location(p) == k % 3
        assert rt.get_object(p).hits == 1


def test_fanout_batches_one_send_per_remote_node():
    """Four subscribers on one remote node cost one control-layer send."""
    rt = MRTS(small_cluster(2))
    leaves = [rt.create_object(Leaf, node=1) for _ in range(4)]
    root = rt.create_object(Root, node=0)
    rt.post(root, "fan", leaves, "payload-once")
    stats = rt.run()
    assert stats.multicast_sends == 1
    assert all(rt.get_object(p).hits == 1 for p in leaves)


def test_fanout_send_count_scales_with_nodes_not_targets():
    rt = MRTS(small_cluster(3))
    # Two subscribers on each of nodes 1 and 2, plus two local ones.
    leaves = [rt.create_object(Leaf, node=n) for n in (0, 0, 1, 1, 2, 2)]
    root = rt.create_object(Root, node=0)
    rt.post(root, "fan", leaves)
    stats = rt.run()
    assert stats.multicast_sends == 2
    assert all(rt.get_object(p).hits == 1 for p in leaves)


def test_fanout_local_only_costs_no_wire_sends():
    rt = MRTS(small_cluster(2))
    leaves = [rt.create_object(Leaf, node=0) for _ in range(3)]
    root = rt.create_object(Root, node=0)
    rt.post(root, "fan", leaves)
    stats = rt.run()
    assert stats.multicast_sends == 0
    assert all(rt.get_object(p).hits == 1 for p in leaves)


def test_fanout_follows_migrated_subscriber():
    """A stale directory hint must not lose a fanout sub-message."""
    rt = MRTS(small_cluster(3))
    leaf = rt.create_object(Leaf, node=0)
    root = rt.create_object(Root, node=1)
    rt.post(leaf, "poke")  # teach node 1's tables where the leaf lives
    rt.run()
    rt.migrate(leaf, 2)
    rt.post(root, "fan", [leaf])
    rt.run()
    assert rt.get_object(leaf).hits == 2
    assert rt.object_location(leaf) == 2


def test_fanout_nbytes_charges_payload_once():
    """Wire size grows with header-per-target, not payload-per-target."""
    payload = ("x" * 100,)
    one = MulticastMessage(
        targets=["t0"], handler="poke", args=payload, mode="fanout",
    )
    four = MulticastMessage(
        targets=["t0", "t1", "t2", "t3"], handler="poke", args=payload,
        mode="fanout",
    )
    growth = four.nbytes() - one.nbytes()
    # Three extra subscribers cost three 16 B headers, not 3x payload.
    assert growth == 3 * 16


def test_fanout_forces_full_deliver_count():
    msg = MulticastMessage(
        targets=["a", "b", "c"], handler="poke", deliver_count=1,
        mode="fanout",
    )
    assert msg.deliver_count == 3


def test_unknown_multicast_mode_rejected():
    with pytest.raises(ValueError, match="unknown multicast mode"):
        MulticastMessage(targets=["a"], handler="poke", mode="scatter")


# --------------------------------------------------------------- speculation
def _spec_runtime(force_abort=False):
    return MRTS(
        small_cluster(2),
        config=MRTSConfig(
            speculation=True, spec_force_abort=force_abort,
        ),
    )


def _post_speculative(rt, ptr, handler_name, *args):
    msg = Message(ptr, handler_name, args, {}, source_node=-1)
    msg.speculative = True
    rt._post_message(msg, from_node=rt.directory.location(ptr.oid))


def test_speculative_fanout_dispatches_on_commit():
    rt = _spec_runtime()
    root = rt.create_object(Root, node=0)
    leaves = [rt.create_object(Leaf, node=k % 2) for k in range(4)]
    _post_speculative(rt, root, "fan_spec", leaves, "ghost")
    rt.run()
    assert rt.stats.spec_committed == 1
    for p in leaves:
        obj = rt.get_object(p)
        assert obj.hits == 1
        assert obj.payloads == ["ghost"]


def test_speculative_fanout_not_duplicated_by_forced_abort():
    """Abort discards the buffered fanout; the re-run delivers it once."""
    rt = _spec_runtime(force_abort=True)
    root = rt.create_object(Root, node=0)
    leaves = [rt.create_object(Leaf, node=k % 2) for k in range(4)]
    _post_speculative(rt, root, "fan_spec", leaves)
    rt.run()
    assert rt.stats.spec_aborted >= 1
    assert all(rt.get_object(p).hits == 1 for p in leaves)
