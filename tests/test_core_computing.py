"""Tests for the computing layer: task scheduling policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CentralQueueExecutor,
    ProcessPoolExecutorBackend,
    SerialExecutor,
    Task,
    ThreadPoolExecutorBackend,
    WorkStealingExecutor,
    make_executor,
)
from repro.core.computing import select_victim


def flat_tasks(n, dur=1.0):
    return [Task(dur) for _ in range(n)]


def test_task_totals():
    t = Task(1.0, children=[Task(2.0), Task(3.0, children=[Task(1.0)])])
    assert t.total_work() == pytest.approx(7.0)
    assert t.critical_path() == pytest.approx(5.0)  # 1 + 3 + 1


def test_serial_executor_sums_everything():
    result = SerialExecutor().schedule(flat_tasks(4, 2.0))
    assert result.makespan == pytest.approx(8.0)
    assert result.busy == [pytest.approx(8.0)]


def test_workstealing_perfect_split():
    ws = WorkStealingExecutor(workers=2, overhead=0.0, steal_cost=0.0)
    result = ws.schedule(flat_tasks(4, 1.0))
    assert result.makespan == pytest.approx(2.0)
    assert result.utilization == pytest.approx(1.0)


def test_workstealing_steals_from_loaded_victim():
    ws = WorkStealingExecutor(workers=2, overhead=0.0, steal_cost=0.0)
    # One root that spawns three children: worker 2 must steal.
    root = Task(1.0, children=[Task(1.0), Task(1.0), Task(1.0)])
    result = ws.schedule([root])
    assert result.steals >= 1
    assert result.makespan < root.total_work()


def test_select_victim_picks_most_backlogged():
    assert select_victim([0, 3, 5, 2]) == 2


def test_select_victim_ties_break_to_lowest_index():
    assert select_victim([0, 4, 4]) == 1
    assert select_victim([4, 0, 4]) == 0


def test_select_victim_respects_min_queue():
    # A victim below min_queue is not worth robbing; nobody means None.
    assert select_victim([1, 1], min_queue=2) is None
    assert select_victim([0, 0]) is None
    assert select_victim([]) is None
    assert select_victim([2, 1], min_queue=2) == 0


def test_workstealing_steal_order_is_deterministic():
    """Pin the exact steal schedule select_victim induces (PR 9).

    One root fans out four children: workers 1 and 2 must each steal the
    oldest child from worker 0 (the only eligible victim), and the whole
    schedule — steal count, makespan, per-worker busy time — must be
    identical run over run.  The runtime's inter-node thief uses the
    same select_victim rule, so this pins both sides of the stack.
    """
    def run():
        ws = WorkStealingExecutor(workers=3, overhead=0.0, steal_cost=0.0)
        root = Task(1.0, children=[Task(1.0) for _ in range(4)])
        return ws.schedule([root])

    first, second = run(), run()
    assert first.steals == second.steals == 2
    assert first.makespan == second.makespan == pytest.approx(3.0)
    assert first.busy == second.busy
    assert first.busy == [pytest.approx(3.0), pytest.approx(1.0),
                          pytest.approx(1.0)]


def test_central_queue_schedule_is_deterministic():
    def run():
        cq = CentralQueueExecutor(workers=2, overhead=0.0, contention=0.0)
        return cq.schedule(flat_tasks(5, 1.0))

    first, second = run(), run()
    assert first.queue_ops == second.queue_ops == 5
    # Global FIFO alternates workers: three tasks land on worker 0.
    assert first.makespan == second.makespan == pytest.approx(3.0)
    assert first.busy == second.busy == [pytest.approx(3.0),
                                         pytest.approx(2.0)]


def test_central_queue_contention_grows_with_workers():
    few = CentralQueueExecutor(workers=2, overhead=0.0, contention=1e-3)
    many = CentralQueueExecutor(workers=8, overhead=0.0, contention=1e-3)
    tasks = flat_tasks(64, 1e-3)
    # Same work, but the wide pool pays more per dequeue.
    t_few = few.schedule(tasks).makespan * 2
    t_many = many.schedule(tasks).makespan * 8
    assert t_many > t_few


def test_workstealing_beats_central_queue_on_fine_grain():
    """The Table VII effect: TBB-like stealing scales a bit better."""
    tree = [
        Task(1e-4, children=[Task(1e-4, children=[Task(1e-4)]), Task(1e-4)])
        for _ in range(64)
    ]
    ws = WorkStealingExecutor(workers=4).schedule(tree)
    cq = CentralQueueExecutor(workers=4).schedule(tree)
    assert ws.makespan <= cq.makespan


def test_make_executor():
    assert isinstance(make_executor("serial", 1), SerialExecutor)
    assert isinstance(make_executor("workstealing", 4), WorkStealingExecutor)
    assert isinstance(make_executor("centralqueue", 4), CentralQueueExecutor)
    with pytest.raises(ValueError):
        make_executor("openmp", 4)


def test_invalid_workers_rejected():
    with pytest.raises(ValueError):
        WorkStealingExecutor(workers=0)
    with pytest.raises(ValueError):
        CentralQueueExecutor(workers=2, overhead=-1.0)


def test_thread_pool_backend_runs_real_code():
    pool = ThreadPoolExecutorBackend(workers=4)
    try:
        results = pool.map_tasks([lambda k=k: k * k for k in range(8)])
        assert results == [k * k for k in range(8)]
        future = pool.submit(sum, [1, 2, 3])
        assert future.result() == 6
    finally:
        pool.shutdown()


def test_thread_pool_worker_validation():
    with pytest.raises(ValueError):
        ThreadPoolExecutorBackend(workers=0)


@settings(max_examples=30, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=40
    ),
    workers=st.integers(min_value=1, max_value=8),
)
def test_schedulers_respect_work_and_span_bounds(durations, workers):
    """Property: makespan >= max(total/P, longest task) for both policies.

    (The classic lower bounds; overheads push the makespan up, never below.)
    """
    tasks = [Task(d) for d in durations]
    total = sum(durations)
    longest = max(durations)
    for policy in (
        WorkStealingExecutor(workers, overhead=0.0, steal_cost=0.0),
        CentralQueueExecutor(workers, overhead=0.0, contention=0.0),
    ):
        result = policy.schedule(tasks)
        assert result.makespan >= total / workers - 1e-9
        assert result.makespan >= longest - 1e-9
        assert sum(result.busy) == pytest.approx(total, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(workers=st.integers(min_value=1, max_value=8))
def test_more_workers_never_hurt_without_overheads(workers):
    tasks = flat_tasks(16, 0.5)
    one = WorkStealingExecutor(1, overhead=0.0, steal_cost=0.0).schedule(tasks)
    many = WorkStealingExecutor(workers, overhead=0.0, steal_cost=0.0).schedule(tasks)
    assert many.makespan <= one.makespan + 1e-9


def test_process_pool_backend_runs_real_processes():
    import os

    pool = ProcessPoolExecutorBackend(workers=2)
    try:
        assert pool._pool is None  # lazy: nothing forked yet
        results = pool.map_tasks([])
        assert results == []
        assert pool._pool is None  # an empty map still forks nothing
        future = pool.submit(os.getpid)
        assert future.result() != os.getpid()  # truly another process
        assert pool.submit(sum, [1, 2, 3]).result() == 6
    finally:
        pool.shutdown()
        pool.shutdown()  # idempotent


def test_process_pool_worker_validation():
    with pytest.raises(ValueError):
        ProcessPoolExecutorBackend(workers=0)
