"""Model-based property tests for the swapping schemes.

Drives each fast scheme (incremental bookkeeping, repro.core.swapping) and
its log-replaying reference model (repro.testing.models) with the same
random touch/forget/rank sequences and requires identical answers for
every observable: full eviction orders, last-touch clocks, touch counts.
The fast scheme additionally maintains its incremental eviction index in
lockstep (index_add on touch), and the index walk must agree with the
reference ranking of the indexed set at every query point.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MRTSConfig, make_scheme
from repro.core.swapping import LFU, LRU, LU, MRU, MU
from repro.testing import make_reference

SCHEMES = MRTSConfig.VALID_SCHEMES
OIDS = st.integers(min_value=0, max_value=7)

op = st.one_of(
    st.tuples(st.just("touch"), OIDS),
    st.tuples(st.just("forget"), OIDS),
    st.tuples(st.just("rank"), st.frozensets(OIDS, min_size=1, max_size=8)),
)
op_sequences = st.lists(op, max_size=80)


def victim(scheme, candidates):
    return next(scheme.iter_in_eviction_order(candidates))


@pytest.mark.parametrize("name", SCHEMES)
@settings(max_examples=60, deadline=None)
@given(ops=op_sequences)
def test_scheme_matches_reference_model(name, ops):
    fast = make_scheme(name)
    model = make_reference(name)
    indexed = set()
    for kind, arg in ops:
        if kind == "touch":
            fast.touch(arg)
            fast.index_add(arg)
            indexed.add(arg)
            model.touch(arg)
        elif kind == "forget":
            fast.forget(arg)
            indexed.discard(arg)
            model.forget(arg)
        else:
            assert list(fast.iter_in_eviction_order(arg)) == list(
                model.iter_in_eviction_order(arg)
            ), f"{name}: order disagrees on candidates {sorted(arg)}"
            assert list(fast.iter_in_eviction_order()) == list(
                model.iter_in_eviction_order(indexed)
            ), f"{name}: incremental index disagrees with reference ranking"
    for oid in range(8):
        assert fast.last_touch(oid) == model.last_touch(oid)
        assert fast.count(oid) == model.count(oid)


@pytest.mark.parametrize("name", SCHEMES)
@settings(max_examples=40, deadline=None)
@given(ops=op_sequences, candidates=st.frozensets(OIDS, min_size=1))
def test_ranking_is_member_complete_and_pure(name, ops, candidates):
    """Ranking permutes the candidate set and does not mutate state."""
    scheme = make_scheme(name)
    for kind, arg in ops:
        if kind == "touch":
            scheme.touch(arg)
        elif kind == "forget":
            scheme.forget(arg)
    first = list(scheme.iter_in_eviction_order(candidates))
    assert sorted(first) == sorted(candidates)
    assert list(scheme.iter_in_eviction_order(candidates)) == first


def test_lru_vs_mru_are_opposites():
    """On distinct recencies the LRU and MRU victims are the extremes."""
    lru, mru = LRU(), MRU()
    for s in (lru, mru):
        for oid in (1, 2, 3):
            s.touch(oid)
    assert victim(lru, {1, 2, 3}) == 1
    assert victim(mru, {1, 2, 3}) == 3


def test_lfu_vs_mu_are_opposites():
    lfu, mu = LFU(), MU()
    for s in (lfu, mu):
        for oid, n in ((1, 3), (2, 1), (3, 2)):
            for _ in range(n):
                s.touch(oid)
    assert victim(lfu, {1, 2, 3}) == 2
    assert victim(mu, {1, 2, 3}) == 1


def test_lu_decays_with_age():
    """A heavily-used-long-ago object loses to a lightly-used-recent one."""
    lu = LU()
    for _ in range(5):
        lu.touch(1)  # five early touches
    for _ in range(20):
        lu.touch(2)  # age object 1 by twenty clock ticks
    lu.touch(3)  # one very recent touch
    # Object 1: count 5, age 21 -> ~0.24; object 3: count 1, age 1 -> 1.0.
    assert victim(lu, {1, 3}) == 1


def test_untouched_objects_evict_first_under_lru_and_lfu():
    for name in ("lru", "lfu"):
        s = make_scheme(name)
        s.touch(5)
        assert victim(s, {5, 9}) == 9  # 9 never touched: score 0
