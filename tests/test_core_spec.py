"""Tests for the speculation layer (PR 9): repro.core.spec.

Covers the protocol directly (begin/commit/abort, eager conflict
detection, local-quiescence commit, the global resolve backstop), the
observability surface (SpecEvents, stats counters), the off-path
(speculation disabled means plain posts and zero speculation machinery),
and — via Hypothesis — the central safety property: commit-time
validation never admits a stale read, and the final application state is
identical to a non-speculative reference no matter how speculation,
forced rollback and real writes interleave.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MRTS, MobileObject, handler
from repro.core.config import MRTSConfig
from repro.core.messages import Message
from repro.core.spec import SpeculationManager
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Counter(MobileObject):
    """Accumulates bumps; the speculation target in every scenario."""

    def __init__(self, pointer):
        super().__init__(pointer)
        self.value = 0

    @handler
    def bump(self, ctx, k: int) -> None:
        self.value += k

    @handler
    def relay(self, ctx, target, k: int) -> None:
        # Executed speculatively, this post lands in the record's outbox
        # and must only reach ``target`` if the record commits.
        ctx.post(target, "bump", k)


class Driver(MobileObject):
    """Fans a scripted mix of real and speculative bumps out to peers."""

    def __init__(self, pointer):
        super().__init__(pointer)

    @handler
    def fan(self, ctx, targets, script) -> None:
        for idx, k, speculative in script:
            if speculative:
                ctx.post_speculative(targets[idx], "bump", k)
            else:
                ctx.post(targets[idx], "bump", k)


def make_runtime(n_nodes=2, cores=1, speculation=True, force_abort=False,
                 memory_bytes=1 << 20):
    return MRTS(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(cores=cores, memory_bytes=memory_bytes),
        ),
        config=MRTSConfig(
            speculation=speculation, spec_force_abort=force_abort,
        ),
    )


def post_speculative(rt, ptr, handler_name, *args):
    """Inject a pre-run speculative message (the ctx path, minus a ctx)."""
    msg = Message(ptr, handler_name, args, {}, source_node=-1)
    msg.speculative = True
    rt._post_message(msg, from_node=rt.directory.location(ptr.oid))


# ----------------------------------------------------------------- protocol
def test_resolve_local_commits_at_queue_drain():
    rt = make_runtime()
    a = rt.create_object(Counter, node=0)
    post_speculative(rt, a, "bump", 7)
    rt.run()
    assert rt.get_object(a).value == 7
    assert rt.stats.spec_issued == 1
    assert rt.stats.spec_committed == 1
    assert rt.stats.spec_aborted == 0


def test_commit_releases_buffered_outbox():
    rt = make_runtime()
    a = rt.create_object(Counter, node=0)
    b = rt.create_object(Counter, node=1)
    post_speculative(rt, a, "relay", b, 5)
    rt.run()
    # The relay ran speculatively; its post to b was buffered and must
    # have dispatched at commit.
    assert rt.get_object(b).value == 5
    assert rt.stats.spec_committed == 1


def test_eager_conflict_abort_then_rerun():
    rt = make_runtime()
    a = rt.create_object(Counter, node=0)
    # Both messages queue before the run starts, so the drain executes
    # the speculative bump first and hits the real bump while the record
    # pends: the conflict must abort eagerly and re-run the work.
    post_speculative(rt, a, "bump", 2)
    rt.post(a, "bump", 3)
    rt.run()
    assert rt.get_object(a).value == 5
    assert rt.stats.spec_aborted == 1
    assert rt.stats.spec_committed == 0


def test_forced_abort_restores_snapshot_and_reruns():
    rt = make_runtime(force_abort=True)
    a = rt.create_object(Counter, node=0)
    b = rt.create_object(Counter, node=1)
    post_speculative(rt, a, "relay", b, 4)
    post_speculative(rt, a, "bump", 1)
    rt.run()
    # Every speculation rolled back and re-ran for real: same final
    # state, zero commits, and the buffered relay post still happened
    # exactly once (on the re-run, not from the discarded outbox).
    assert rt.get_object(a).value == 1
    assert rt.get_object(b).value == 4
    assert rt.stats.spec_committed == 0
    assert rt.stats.spec_aborted >= 2


def test_global_resolve_backstop(monkeypatch):
    # With the local-quiescence commit disabled, records survive to the
    # quiescent cut and the global resolve must commit them there.
    monkeypatch.setattr(
        SpeculationManager, "resolve_local", lambda self, oid: None
    )
    rt = make_runtime()
    a = rt.create_object(Counter, node=0)
    b = rt.create_object(Counter, node=1)
    post_speculative(rt, a, "relay", b, 9)
    rt.run()
    assert rt.get_object(b).value == 9
    assert rt.stats.spec_committed == 1
    assert rt.speculation.pending == {}


# ------------------------------------------------------------ observability
def test_spec_events_published_on_commit_and_abort():
    rt = make_runtime()
    sub = rt.bus.subscribe()
    a = rt.create_object(Counter, node=0)
    post_speculative(rt, a, "bump", 1)
    rt.run()
    phases = [e.phase for e in sub.events if e.kind == "spec"]
    assert phases == ["issued", "committed"]

    rt2 = make_runtime(force_abort=True)
    sub2 = rt2.bus.subscribe()
    c = rt2.create_object(Counter, node=0)
    post_speculative(rt2, c, "bump", 1)
    rt2.run()
    phases2 = [e.phase for e in sub2.events if e.kind == "spec"]
    assert phases2 == ["issued", "aborted"]


# ---------------------------------------------------------------- off path
def test_speculation_off_is_plain_post():
    rt = make_runtime(speculation=False)
    targets = [rt.create_object(Counter, node=i % 2) for i in range(3)]
    d = rt.create_object(Driver, node=0)
    rt.post(d, "fan", targets, [(0, 1, True), (1, 2, False), (2, 3, True)])
    rt.run()
    assert rt.speculation is None
    assert [rt.get_object(p).value for p in targets] == [1, 2, 3]
    assert rt.stats.spec_issued == 0
    assert rt.stats.spec_committed == 0
    assert rt.stats.spec_aborted == 0
    sub_events = [e for e in rt.bus.subscribe().events if e.kind == "spec"]
    assert sub_events == []


# ----------------------------------------------------------------- property
SCRIPTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # target index
        st.integers(min_value=1, max_value=5),   # bump amount
        st.booleans(),                           # speculative?
    ),
    min_size=1,
    max_size=24,
)


def _run_script(script, speculation, force_abort=False):
    rt = make_runtime(speculation=speculation, force_abort=force_abort)
    targets = [rt.create_object(Counter, node=i % 2) for i in range(4)]
    d = rt.create_object(Driver, node=0)
    rt.post(d, "fan", targets, script)

    stale_admissions = []
    if rt.speculation is not None:
        original = SpeculationManager.commit

        def checked(self, record):
            # THE property: a committing record's version stamp matches
            # the directory at the instant of commit — validation never
            # admits a read that a later write invalidated.
            if record.version != self.runtime.directory.version(record.oid):
                stale_admissions.append(record.oid)
            return original(self, record)

        rt.speculation.commit = checked.__get__(rt.speculation)
    rt.run()
    assert stale_admissions == []
    return [rt.get_object(p).value for p in targets]


@settings(max_examples=40, deadline=None)
@given(script=SCRIPTS)
def test_commit_validation_never_admits_stale_reads(script):
    """Any real/speculative interleaving lands on the reference state.

    The reference is the same script with speculation off; the
    speculative runs additionally assert (inside a wrapped ``commit``)
    that every admitted record's version stamp was still current.
    """
    want = _run_script(script, speculation=False)
    assert _run_script(script, speculation=True) == want
    assert _run_script(script, speculation=True, force_abort=True) == want


# -------------------------------------------------------------- application
def test_updr_speculative_witness_matches_reference():
    from repro.evalsim.apps import run_updr_model

    cluster = ClusterSpec(
        n_nodes=2, node=NodeSpec(cores=2, memory_bytes=8 * 1024 * 1024)
    )

    def witness(config):
        result = run_updr_model(60_000, cluster, mrts=True, config=config)
        rt = result.runtime
        out = {}
        for oid in sorted(rt._objects_by_oid):
            obj = rt.get_object(rt._objects_by_oid[oid])
            if hasattr(obj, "region_id") and hasattr(obj, "round"):
                out[obj.region_id] = (obj.elements, obj.round)
        return out, result

    want, _ = witness(MRTSConfig(prefetch_depth=3))
    got, on = witness(MRTSConfig(
        prefetch_depth=3, speculation=True, work_stealing=True,
    ))
    assert got == want
    assert on.stats.spec_committed > 0


def test_spec_chaos_cell_passes():
    from repro.testing.chaos import SpecChaosSpec, run_spec_chaos_case

    report = run_spec_chaos_case(SpecChaosSpec(name="unit-forced-rollback"))
    assert report.ok, report.problems
    assert report.state_matches
