"""Tests for the distributed directory (lazy / eager / home policies)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import make_directory


def test_make_directory_policies():
    for policy in ("lazy", "eager", "home"):
        d = make_directory(policy, 4)
        assert d.policy == policy
    with pytest.raises(ValueError):
        make_directory("gossip", 4)


def test_register_and_location():
    d = make_directory("lazy", 4)
    d.register(10, 2)
    assert d.location(10) == 2
    assert 10 in d
    assert 99 not in d


def test_lookup_unregistered_raises():
    d = make_directory("lazy", 4)
    with pytest.raises(KeyError):
        d.lookup(5, 0)


def test_lazy_lookup_uses_local_hint():
    d = make_directory("lazy", 4)
    d.register(10, 2)
    # Node 2 (creator) knows; node 0 has no hint, guesses oid % n == 2.
    assert d.lookup(10, 2) == 2
    assert d.lookup(10, 0) == 10 % 4


def test_lazy_migration_updates_only_old_node():
    d = make_directory("lazy", 4)
    d.register(10, 0)
    d.hints[3][10] = 0  # node 3 learned the old location
    d.migrated(10, 1)
    assert d.location(10) == 1
    assert d.hints[0][10] == 1      # forward pointer at the old node
    assert d.hints[3][10] == 0      # stale hint remains (lazy!)


def test_lazy_forwarding_chain_and_arrival_update():
    d = make_directory("lazy", 4)
    # oid chosen so the modulo fallback guess (9 % 4 == 1) is stale.
    d.register(9, 0)
    d.migrated(9, 1)
    d.migrated(9, 2)
    # Message from node 3 lands on a stale location, gets forwarded.
    first = d.lookup(9, 3)
    hops = [first]
    at = first
    while d.truth[9] != at:
        at = d.next_hop(9, at)
        hops.append(at)
    assert hops[-1] == 2
    assert d.stats.forwards >= 1
    # Arrival sends updates back along the path.
    updates = d.arrived(9, hops[:-1] + [3])
    assert updates >= 1
    assert d.hints[3][9] == 2  # node 3 corrected


def test_eager_migration_updates_everyone():
    d = make_directory("eager", 4)
    d.register(10, 0)
    cost = d.migrated(10, 3)
    assert cost == 3  # n_nodes - 1 broadcasts
    for node in range(4):
        assert d.hints[node][10] == 3
        assert d.lookup(10, node) == 3


def test_home_policy_indirection():
    d = make_directory("home", 4)
    d.register(10, 0)
    d.migrated(10, 3)
    # Home of 10 is 10 % 4 == 2; a fresh node asks home and gets the truth.
    assert d.home_of(10) == 2
    assert d.lookup(10, 1) == 3
    assert d.stats.home_queries >= 1
    # Second lookup from the same node hits the cached hint (no new query).
    before = d.stats.home_queries
    assert d.lookup(10, 1) == 3
    assert d.stats.home_queries == before


def test_unregister_clears_state():
    d = make_directory("lazy", 2)
    d.register(5, 1)
    d.unregister(5)
    assert 5 not in d
    with pytest.raises(KeyError):
        d.migrated(5, 0)


def test_migrate_unregistered_raises():
    for policy in ("lazy", "eager", "home"):
        d = make_directory(policy, 2)
        with pytest.raises(KeyError):
            d.migrated(1, 0)


def test_directory_needs_positive_nodes():
    with pytest.raises(ValueError):
        make_directory("lazy", 0)


@settings(max_examples=30, deadline=None)
@given(
    moves=st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=20),
    policy=st.sampled_from(["lazy", "eager", "home"]),
    asker=st.integers(min_value=0, max_value=7),
)
def test_forwarding_always_converges(moves, policy, asker):
    """Property: following next_hop from any lookup reaches the object.

    This is the key liveness property of lazy updates: chains may be long
    but always terminate at the true location.
    """
    d = make_directory(policy, 8)
    d.register(42, 0)
    for dst in moves:
        if dst != d.location(42):
            d.migrated(42, dst)
    at = d.lookup(42, asker)
    seen = set()
    while d.truth[42] != at:
        assert at not in seen, "forwarding cycle detected"
        seen.add(at)
        at = d.next_hop(42, at)
    assert at == d.location(42)
