"""Unit tests for the retry/backoff storage layer.

:class:`RetryingBackend` is the innermost ring of the self-healing
storage stack: it absorbs :class:`TransientStorageError` with capped
exponential backoff and seeded jitter, gives up when attempts or the
per-op backoff budget run out, and reports every retry through the
``on_retry`` hook.  Permanent failures must pass through untouched —
retrying a checksum mismatch or a full disk only wastes the budget the
recovery layer needs.
"""

import pytest

from repro.core.storage import (
    ChecksummedBackend,
    CountingBackend,
    MemoryBackend,
    RetryPolicy,
    RetryingBackend,
    encode_frame,
)
from repro.testing.faults import FaultPlan, FaultyBackend, StorageFault
from repro.util.errors import (
    CorruptObject,
    ObjectNotFound,
    StorageFull,
    TransientStorageError,
)


class FlakyBackend(MemoryBackend):
    """Fail the first ``n`` calls of each op with a chosen exception."""

    def __init__(self, fail_first=0, exc=StorageFault):
        super().__init__()
        self.fail_first = fail_first
        self.exc = exc
        self.calls = {"store": 0, "load": 0, "delete": 0}

    def _maybe_fail(self, op):
        self.calls[op] += 1
        if self.calls[op] <= self.fail_first:
            raise self.exc(f"injected {op} #{self.calls[op]}")

    def store(self, oid, data):
        self._maybe_fail("store")
        super().store(oid, data)

    def load(self, oid):
        self._maybe_fail("load")
        return super().load(oid)

    def delete(self, oid):
        self._maybe_fail("delete")
        super().delete(oid)


# ------------------------------------------------------------------ policy
def test_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="base_delay_s"):
        RetryPolicy(base_delay_s=-0.1)
    with pytest.raises(ValueError, match="base_delay_s"):
        RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
    with pytest.raises(ValueError, match="op_timeout_s"):
        RetryPolicy(op_timeout_s=-1.0)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.5)


def test_backoff_doubles_and_caps():
    import random

    policy = RetryPolicy(base_delay_s=0.010, max_delay_s=0.040, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay(k, rng) for k in range(1, 6)]
    assert delays == [0.010, 0.020, 0.040, 0.040, 0.040]


def test_jitter_only_shrinks_the_delay():
    import random

    policy = RetryPolicy(base_delay_s=0.010, max_delay_s=0.010, jitter=0.5)
    rng = random.Random(42)
    for k in range(1, 20):
        d = policy.delay(k, rng)
        assert 0.005 <= d <= 0.010


def test_retry_schedule_is_deterministic_per_seed():
    def schedule(seed):
        inner = FlakyBackend(fail_first=3)
        backend = RetryingBackend(
            inner, RetryPolicy(max_attempts=5, seed=seed)
        )
        backend.store(1, b"x")
        return backend.backoff_s

    assert schedule(7) == schedule(7)
    assert schedule(7) != schedule(8)


# ----------------------------------------------------------- absorb/give up
def test_absorbs_transient_store_faults():
    inner = FlakyBackend(fail_first=2)
    backend = RetryingBackend(inner, RetryPolicy(max_attempts=4))
    backend.store(1, b"payload")
    inner.fail_first = 0
    assert inner.load(1) == b"payload"
    assert backend.retries == 2
    assert backend.gave_up == 0


def test_absorbs_transient_load_and_delete_faults():
    inner = FlakyBackend(fail_first=1)
    backend = RetryingBackend(inner, RetryPolicy(max_attempts=3))
    inner.fail_first = 0
    backend.store(1, b"payload")
    inner.fail_first = 1  # load and delete each fail once
    assert backend.load(1) == b"payload"
    backend.delete(1)
    assert not backend.contains(1)
    assert backend.retries == 2


def test_gives_up_after_max_attempts():
    inner = FlakyBackend(fail_first=10)
    backend = RetryingBackend(inner, RetryPolicy(max_attempts=3))
    with pytest.raises(StorageFault):
        backend.store(1, b"x")
    assert inner.calls["store"] == 3
    assert backend.retries == 2
    assert backend.gave_up == 1


def test_per_op_timeout_stops_retrying_early():
    inner = FlakyBackend(fail_first=10)
    policy = RetryPolicy(
        max_attempts=10, base_delay_s=0.010, max_delay_s=0.010,
        op_timeout_s=0.025, jitter=0.0,
    )
    backend = RetryingBackend(inner, policy)
    with pytest.raises(StorageFault):
        backend.store(1, b"x")
    # Budget 0.025 admits two 0.010 retries; the third would overdraw.
    assert inner.calls["store"] == 3
    assert backend.gave_up == 1


def test_zero_timeout_means_no_retries():
    inner = FlakyBackend(fail_first=1)
    backend = RetryingBackend(
        inner, RetryPolicy(max_attempts=5, op_timeout_s=0.0)
    )
    with pytest.raises(StorageFault):
        backend.store(1, b"x")
    assert backend.retries == 0


# ------------------------------------------------- permanent errors pass by
@pytest.mark.parametrize("exc", [CorruptObject, StorageFull])
def test_never_retries_permanent_errors(exc):
    inner = FlakyBackend(fail_first=5, exc=exc)
    backend = RetryingBackend(inner, RetryPolicy(max_attempts=5))
    with pytest.raises(exc):
        backend.store(1, b"x")
    assert inner.calls["store"] == 1
    assert backend.retries == 0


def test_object_not_found_passes_through():
    backend = RetryingBackend(MemoryBackend(), RetryPolicy())
    with pytest.raises(ObjectNotFound):
        backend.load(99)
    assert backend.retries == 0


# --------------------------------------------------------------- callbacks
def test_on_retry_callback_sees_each_retry():
    seen = []
    inner = FlakyBackend(fail_first=2)
    backend = RetryingBackend(
        inner, RetryPolicy(max_attempts=4),
        on_retry=lambda op, oid, attempt, delay: seen.append(
            (op, oid, attempt, delay)
        ),
    )
    backend.store(7, b"x")
    assert [(op, oid, attempt) for op, oid, attempt, _ in seen] == [
        ("store", 7, 1), ("store", 7, 2)
    ]
    assert all(delay >= 0 for _, _, _, delay in seen)
    assert sum(d for _, _, _, d in seen) == pytest.approx(backend.backoff_s)


def test_sleep_hook_receives_the_backoff():
    slept = []
    inner = FlakyBackend(fail_first=1)
    backend = RetryingBackend(
        inner, RetryPolicy(max_attempts=2, jitter=0.0, base_delay_s=0.003),
        sleep=slept.append,
    )
    backend.store(1, b"x")
    assert slept == [0.003]


# ------------------------------------------------------- stack composition
def test_retry_under_checksums_repairs_flaky_medium():
    """Frames outside retry: a retried store still round-trips the frame."""
    inner = FaultyBackend(
        MemoryBackend(), FaultPlan(store_fail_rate=0.4, seed=3)
    )
    stack = CountingBackend(
        ChecksummedBackend(RetryingBackend(inner, RetryPolicy(max_attempts=8)))
    )
    for oid in range(20):
        stack.store(oid, bytes([oid]) * 64)
    for oid in range(20):
        assert stack.load(oid) == bytes([oid]) * 64
        assert stack.size(oid) == 64
    assert stack.stores == 20


def test_corrupt_frame_is_not_retried():
    """A torn frame under the checksum layer fails fast, no retry burn."""
    inner = MemoryBackend()
    retrying = RetryingBackend(inner, RetryPolicy(max_attempts=5))
    stack = ChecksummedBackend(retrying)
    inner.store(1, encode_frame(b"payload")[:-3])  # torn write residue
    with pytest.raises(CorruptObject):
        stack.load(1)
    assert retrying.retries == 0


def test_passthrough_ops_do_not_touch_retry_machinery():
    inner = FlakyBackend(fail_first=0)
    backend = RetryingBackend(inner, RetryPolicy())
    backend.store(1, b"abc")
    assert backend.contains(1)
    assert backend.size(1) == 3
    assert backend.stored_ids() == [1]
    assert isinstance(TransientStorageError("x"), Exception)


# ----------------------------------------------------- batched loads (PR 7)
def test_load_many_retried_as_one_batch():
    """A transient fault mid-batch retries the whole batch under oid=-1."""
    seen = []
    inner = FlakyBackend(fail_first=0)
    inner.store(1, b"aa")
    inner.store(2, b"bb")
    inner.fail_first = 1  # the next load (inside the batch) dies once
    backend = RetryingBackend(
        inner, RetryPolicy(max_attempts=4),
        on_retry=lambda op, oid, attempt, delay: seen.append(
            (op, oid, attempt)
        ),
    )
    out = backend.load_many([1, 2])
    assert out == {1: [b"aa"], 2: [b"bb"]}
    assert seen == [("load_many", -1, 1)]
