"""Tests for the out-of-core layer: thresholds, locks, priorities, plans."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MRTSConfig, OOCLayer
from repro.util.errors import OutOfMemory


def make_layer(budget=1000, **config_kw):
    config = MRTSConfig(**config_kw)
    return OOCLayer(config, budget=budget)


def test_admit_within_budget_no_evictions():
    ooc = make_layer()
    assert ooc.admit(1, 400) == []
    ooc.confirm_admit(1)
    assert ooc.memory_used == 400
    assert ooc.is_resident(1)


def test_admit_over_budget_plans_evictions():
    ooc = make_layer(budget=1000)
    for oid in (1, 2):
        ooc.admit(oid, 400)
        ooc.confirm_admit(oid)
    victims = ooc.admit(3, 400)
    assert victims == [1]  # LRU: oldest goes
    for v in victims:
        ooc.confirm_evict(v)
    ooc.confirm_admit(3)
    assert ooc.memory_used == 800
    assert not ooc.is_resident(1)


def test_admit_duplicate_rejected():
    ooc = make_layer()
    ooc.admit(1, 10)
    with pytest.raises(ValueError):
        ooc.admit(1, 10)


def test_object_too_large_raises():
    ooc = make_layer(budget=100)
    with pytest.raises(OutOfMemory):
        ooc.admit(1, 200)


def test_locked_objects_never_evicted():
    ooc = make_layer(budget=1000)
    for oid in (1, 2):
        ooc.admit(oid, 400)
        ooc.confirm_admit(oid)
    ooc.lock(1)
    victims = ooc.admit(3, 400)
    assert victims == [2]


def test_all_locked_raises_out_of_memory():
    """The paper's warning: locking too many objects exhausts memory."""
    ooc = make_layer(budget=1000)
    for oid in (1, 2):
        ooc.admit(oid, 400)
        ooc.confirm_admit(oid)
        ooc.lock(oid)
    with pytest.raises(OutOfMemory, match="locked"):
        ooc.admit(3, 400)


def test_priority_protects_from_eviction():
    ooc = make_layer(budget=1000)
    for oid in (1, 2):
        ooc.admit(oid, 400)
        ooc.confirm_admit(oid)
    ooc.set_priority(1, 10.0)  # high priority: keep in core
    victims = ooc.admit(3, 400)
    assert victims == [2]


def test_queued_messages_raise_effective_priority():
    ooc = make_layer(budget=1000)
    for oid in (1, 2):
        ooc.admit(oid, 400)
        ooc.confirm_admit(oid)
    ooc.set_queue_length(1, 5)  # has pending work: keep it
    victims = ooc.admit(3, 400)
    assert victims == [2]


def test_plan_load_roundtrip():
    ooc = make_layer(budget=1000)
    for oid in (1, 2):
        ooc.admit(oid, 400)
        ooc.confirm_admit(oid)
    victims = ooc.admit(3, 400)
    for v in victims:
        ooc.confirm_evict(v)
    ooc.confirm_admit(3)
    # Bring object 1 back: needs room again.
    plan = ooc.plan_load(1)
    assert plan  # someone must go
    for v in plan:
        ooc.confirm_evict(v)
    ooc.confirm_load(1)
    assert ooc.is_resident(1)
    assert ooc.memory_used <= ooc.budget


def test_plan_load_already_resident_is_noop():
    ooc = make_layer()
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    assert ooc.plan_load(1) == []


def test_confirm_evict_guards():
    ooc = make_layer()
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    ooc.lock(1)
    with pytest.raises(ValueError):
        ooc.confirm_evict(1)
    ooc.unlock(1)
    ooc.confirm_evict(1)
    with pytest.raises(ValueError):
        ooc.confirm_evict(1)


def test_hard_threshold_tracks_largest_stored():
    ooc = make_layer(budget=1000, hard_threshold_factor=2.0)
    assert ooc.hard_threshold() == 0  # nothing stored yet
    ooc.admit(1, 300)
    ooc.confirm_admit(1)
    ooc.confirm_evict(1)
    assert ooc.hard_threshold() == 600


def test_soft_threshold_advice():
    ooc = make_layer(budget=1000, soft_threshold_fraction=0.5)
    ooc.admit(1, 700)
    ooc.confirm_admit(1)
    assert ooc.below_soft_threshold()
    advice = ooc.advise_swap()
    assert advice == [1]
    ooc.set_queue_length(1, 2)
    assert ooc.advise_swap() == []  # pending work: not advised out


def test_advise_swap_above_threshold_empty():
    ooc = make_layer(budget=1000)
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    assert ooc.advise_swap() == []


def test_resize_grows_and_shrinks():
    ooc = make_layer(budget=1000)
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    assert ooc.resize(1, 300) == []
    assert ooc.memory_used == 300
    ooc.resize(1, 50)
    assert ooc.memory_used == 50


def test_resize_non_resident_rejected():
    ooc = make_layer()
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    ooc.confirm_evict(1)
    with pytest.raises(ValueError):
        ooc.resize(1, 200)


def test_forget_frees_memory():
    ooc = make_layer()
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    ooc.forget(1)
    assert ooc.memory_used == 0
    assert not ooc.is_resident(1)


def test_prefetch_respects_depth_and_memory():
    ooc = make_layer(budget=1000, prefetch_depth=2)
    for oid in (1, 2, 3, 4):
        ooc.admit(oid, 200)
        ooc.confirm_admit(oid)
    for oid in (1, 2, 3):
        ooc.confirm_evict(oid)
    picks = ooc.prefetch_candidates([1, 2, 3])
    assert len(picks) <= 2
    # Resident object never prefetched.
    assert 4 not in ooc.prefetch_candidates([4, 1])


def test_budget_validation():
    with pytest.raises(ValueError):
        make_layer(budget=0)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=30),
    scheme=st.sampled_from(["lru", "lfu", "mru", "mu", "lu"]),
)
def test_memory_never_exceeds_budget(sizes, scheme):
    """Property: executing every plan keeps memory within budget."""
    ooc = OOCLayer(MRTSConfig(swap_scheme=scheme), budget=1000)
    for oid, size in enumerate(sizes):
        try:
            victims = ooc.admit(oid, size)
        except OutOfMemory:
            continue
        for v in victims:
            ooc.confirm_evict(v)
        ooc.confirm_admit(oid)
        assert 0 <= ooc.memory_used <= ooc.budget
    assert ooc.high_water <= ooc.budget
