"""Tests for robust geometric predicates."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    circumcenter,
    circumradius_sq,
    dist_sq,
    incircle,
    incircle_exact,
    orient2d,
    orient2d_exact,
    point_in_triangle,
    segments_intersect,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
pts = st.tuples(finite, finite)


def test_orient2d_basic_signs():
    assert orient2d((0, 0), (1, 0), (0, 1)) > 0      # ccw
    assert orient2d((0, 0), (0, 1), (1, 0)) < 0      # cw
    assert orient2d((0, 0), (1, 1), (2, 2)) == 0     # collinear


def test_orient2d_near_degenerate_matches_exact():
    """The float filter must agree with exact arithmetic near zero."""
    a = (0.1, 0.1)
    b = (0.3, 0.3)
    # Points a hair off the line y=x.
    for eps in (1e-18, 1e-16, 1e-14, 0.0, -1e-16):
        c = (0.2, 0.2 + eps)
        fast = orient2d(a, b, c)
        exact = orient2d_exact(a, b, c)
        assert (fast > 0) == (exact > 0)
        assert (fast < 0) == (exact < 0)
        assert (fast == 0) == (exact == 0)


@given(a=pts, b=pts, c=pts)
def test_orient2d_sign_matches_exact(a, b, c):
    fast = orient2d(a, b, c)
    exact = orient2d_exact(a, b, c)
    assert (fast > 0) == (exact > 0)
    assert (fast < 0) == (exact < 0)


@given(a=pts, b=pts, c=pts)
def test_orient2d_antisymmetry(a, b, c):
    """Swapping two arguments flips the sign."""
    s1 = orient2d(a, b, c)
    s2 = orient2d(b, a, c)
    assert (s1 > 0) == (s2 < 0)
    assert (s1 == 0) == (s2 == 0)


def test_incircle_basic():
    # Unit circle through these three ccw points.
    a, b, c = (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)
    assert incircle(a, b, c, (0.0, 0.0)) > 0      # center is inside
    assert incircle(a, b, c, (2.0, 0.0)) < 0      # outside
    assert incircle(a, b, c, (0.0, -1.0)) == 0    # on the circle


def test_incircle_cocircular_exact_fallback():
    a, b, c = (0.0, 0.0), (1.0, 0.0), (1.0, 1.0)
    d = (0.0, 1.0)  # exactly cocircular (unit square)
    assert incircle(a, b, c, d) == 0
    assert incircle_exact(a, b, c, d) == 0


@given(a=pts, b=pts, c=pts, d=pts)
def test_incircle_sign_matches_exact(a, b, c, d):
    fast = incircle(a, b, c, d)
    exact = incircle_exact(a, b, c, d)
    assert (fast > 0) == (exact > 0)
    assert (fast < 0) == (exact < 0)


def test_circumcenter_equidistant():
    a, b, c = (0.0, 0.0), (4.0, 0.0), (0.0, 3.0)
    cc = circumcenter(a, b, c)
    assert dist_sq(cc, a) == pytest.approx(dist_sq(cc, b))
    assert dist_sq(cc, a) == pytest.approx(dist_sq(cc, c))


@given(a=pts, b=pts, c=pts)
def test_circumcenter_equidistant_property(a, b, c):
    if orient2d(a, b, c) == 0:
        return  # degenerate: no circumcenter
    cc = circumcenter(a, b, c)
    r2 = dist_sq(cc, a)
    longest = max(dist_sq(a, b), dist_sq(b, c), dist_sq(c, a))
    shortest = min(dist_sq(a, b), dist_sq(b, c), dist_sq(c, a))
    if longest == 0 or r2 > 1e4 * longest or shortest < 1e-12 * longest:
        return  # (near-)needle triangle: float circumcenter loses accuracy
    scale = max(r2, 1.0)
    assert dist_sq(cc, b) == pytest.approx(r2, rel=1e-5, abs=1e-5 * scale)
    assert dist_sq(cc, c) == pytest.approx(r2, rel=1e-5, abs=1e-5 * scale)


def test_circumcenter_underflow_regression():
    """Cross product underflows to float 0 on this exactly-ccw triangle.

    Hypothesis found it crashing with ZeroDivisionError; the exact-
    arithmetic fallback must produce a finite, equidistant center here
    (the coordinates are tiny, so the center is representable).
    """
    a = (0.0, 0.0)
    b = (0.0, 1.8789180290781633e-177)
    c = (7.0838981334494475e-168, 0.0)
    assert orient2d(a, b, c) != 0
    cc = circumcenter(a, b, c)
    assert all(math.isfinite(x) for x in cc)
    # Equidistance holds exactly at this scale (coordinates are powers of
    # the inputs; compare with a wide relative tolerance).
    assert dist_sq(cc, a) == pytest.approx(dist_sq(cc, b), rel=1e-6)
    assert dist_sq(cc, a) == pytest.approx(dist_sq(cc, c), rel=1e-6)


def test_circumcenter_collinear_raises_even_when_tiny():
    """Truly collinear input still raises, including at underflow scale."""
    with pytest.raises(ZeroDivisionError):
        circumcenter((0.0, 0.0), (1.0, 1.0), (2.0, 2.0))
    with pytest.raises(ZeroDivisionError):
        circumcenter((0.0, 0.0), (1e-200, 1e-200), (2e-200, 2e-200))


def test_circumcenter_far_center_saturates_to_inf():
    """A needle triangle whose exact center exceeds float range gives inf."""
    cc = circumcenter((0.0, 0.0), (1e-300, 5e-324), (2e-300, 0.0))
    assert any(math.isinf(x) for x in cc) or all(math.isfinite(x) for x in cc)
    # Whatever the magnitude, the call must not raise.


def test_circumradius_sq_equilateral():
    h = math.sqrt(3) / 2
    r2 = circumradius_sq((0, 0), (1, 0), (0.5, h))
    assert r2 == pytest.approx(1.0 / 3.0)


def test_point_in_triangle():
    a, b, c = (0.0, 0.0), (1.0, 0.0), (0.0, 1.0)
    assert point_in_triangle((0.25, 0.25), a, b, c)
    assert point_in_triangle((0.0, 0.0), a, b, c)       # vertex counts
    assert point_in_triangle((0.5, 0.5), a, b, c)       # on hypotenuse
    assert not point_in_triangle((1.0, 1.0), a, b, c)


def test_segments_intersect_crossing():
    assert segments_intersect((0, 0), (1, 1), (0, 1), (1, 0))
    assert segments_intersect((0, 0), (1, 1), (0, 1), (1, 0), proper_only=True)


def test_segments_intersect_disjoint():
    assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))


def test_segments_intersect_shared_endpoint():
    assert segments_intersect((0, 0), (1, 0), (1, 0), (1, 1))
    assert not segments_intersect((0, 0), (1, 0), (1, 0), (1, 1), proper_only=True)


def test_segments_intersect_touching_midpoint():
    # q1 touches the middle of p1p2.
    assert segments_intersect((0, 0), (2, 0), (1, 0), (1, 1))
    assert not segments_intersect((0, 0), (2, 0), (1, 0), (1, 1), proper_only=True)


def test_segments_collinear_overlap():
    assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))
    assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))


@given(p1=pts, p2=pts, q1=pts, q2=pts)
def test_segments_intersect_symmetry(p1, p2, q1, q2):
    assert segments_intersect(p1, p2, q1, q2) == segments_intersect(q1, q2, p1, p2)
