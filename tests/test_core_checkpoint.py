"""Tests for checkpoint/restore fault tolerance (paper conclusion)."""

import pytest

from repro.core import (
    Checkpoint,
    CheckpointPolicy,
    MobileObject,
    MRTS,
    checkpoint,
    handler,
    restore,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.util.errors import MRTSError


class Accumulator(MobileObject):
    def __init__(self, pointer, label=""):
        super().__init__(pointer)
        self.label = label
        self.total = 0

    @handler
    def add(self, ctx, amount):
        self.total += amount

    @handler
    def chain(self, ctx, amount, hops, peer):
        self.total += amount
        if hops > 0:
            ctx.post(peer, "chain", amount, hops - 1, self.pointer)


def cluster(n=2, memory=1 << 22):
    return ClusterSpec(n_nodes=n, node=NodeSpec(cores=1, memory_bytes=memory))


def make_app():
    rt = MRTS(cluster())
    ptrs = [rt.create_object(Accumulator, f"acc{k}", node=k % 2) for k in range(4)]
    return rt, ptrs


def test_checkpoint_captures_state_and_restores():
    rt, ptrs = make_app()
    for p in ptrs:
        rt.post(p, "add", 10)
    rt.run()
    snap = checkpoint(rt)
    assert snap.n_objects == 4
    assert snap.pending_messages == 0

    # "Crash": throw the runtime away; restore into a fresh one.
    rt2 = MRTS(cluster())
    restored = restore(snap, rt2)
    assert set(restored) == {p.oid for p in ptrs}
    for p in ptrs:
        assert rt2.get_object(restored[p.oid]).total == 10
        assert rt2.object_location(restored[p.oid]) == rt.object_location(p)


def test_checkpoint_preserves_pending_messages():
    rt, ptrs = make_app()
    # Post but do NOT run: the messages are pending in queues.
    for p in ptrs:
        rt.post(p, "add", 7)
    snap = checkpoint(rt)
    assert snap.pending_messages == 4

    rt2 = MRTS(cluster())
    restored = restore(snap, rt2)
    rt2.run()
    for p in ptrs:
        assert rt2.get_object(restored[p.oid]).total == 7


def test_restored_app_continues_computation():
    """The real fault-tolerance scenario: snapshot mid-computation (between
    phases), lose the runtime, resume from the snapshot, finish."""
    rt, ptrs = make_app()
    rt.post(ptrs[0], "chain", 1, 6, ptrs[1])
    rt.run()  # phase 1 completes: totals 4/3 over the two chain endpoints
    snap = checkpoint(rt)

    rt2 = MRTS(cluster())
    restored = restore(snap, rt2)
    a, b = restored[ptrs[0].oid], restored[ptrs[1].oid]
    rt2.post(a, "chain", 1, 2, b)
    rt2.run()
    total_old = rt.get_object(ptrs[0]).total + rt.get_object(ptrs[1]).total
    total_new = rt2.get_object(a).total + rt2.get_object(b).total
    assert total_new == total_old + 3  # 3 more chain hops landed


def test_checkpoint_roundtrips_through_bytes():
    rt, ptrs = make_app()
    rt.post(ptrs[0], "add", 5)
    rt.run()
    snap = checkpoint(rt)
    data = snap.to_bytes()
    clone = Checkpoint.from_bytes(data)
    assert clone.n_objects == snap.n_objects
    rt2 = MRTS(cluster())
    restored = restore(clone, rt2)
    assert rt2.get_object(restored[ptrs[0].oid]).total == 5


def test_checkpoint_includes_spilled_objects():
    rt = MRTS(cluster(memory=120_000))

    class Blob(MobileObject):
        def __init__(self, pointer, size):
            super().__init__(pointer)
            self.data = bytes(size)

        @handler
        def touch(self, ctx):
            pass

    ptrs = [rt.create_object(Blob, 50_000, node=0) for _ in range(4)]
    for p in ptrs:
        rt.post(p, "touch")
    rt.run()
    assert rt.stats.objects_stored > 0  # some really are on "disk"
    snap = checkpoint(rt)
    rt2 = MRTS(cluster(memory=120_000))
    restored = restore(snap, rt2, class_map={"Blob": Blob})
    # Restoration respects memory: not everything can be resident at once.
    assert len(restored) == 4
    for p in ptrs:
        assert len(rt2.get_object(restored[p.oid]).data) == 50_000


def test_restore_requires_fresh_runtime():
    rt, ptrs = make_app()
    snap = checkpoint(rt)
    with pytest.raises(MRTSError, match="fresh"):
        restore(snap, rt)


def test_restore_requires_enough_nodes():
    rt, _ = make_app()
    snap = checkpoint(rt)
    rt1 = MRTS(cluster(n=1))
    with pytest.raises(MRTSError, match="nodes"):
        restore(snap, rt1)


def test_from_bytes_rejects_garbage():
    import pickle

    with pytest.raises(MRTSError):
        Checkpoint.from_bytes(pickle.dumps({"not": "a checkpoint"}))


def test_new_objects_after_restore_get_fresh_ids():
    rt, ptrs = make_app()
    snap = checkpoint(rt)
    rt2 = MRTS(cluster())
    restore(snap, rt2)
    fresh = rt2.create_object(Accumulator, "new")
    assert fresh.oid not in {p.oid for p in ptrs}


def test_checkpoint_policy_interval():
    rt, ptrs = make_app()
    policy = CheckpointPolicy(rt, interval=3)
    for round_no in range(3):
        for p in ptrs:
            rt.post(p, "add", 1)
        rt.run()
        policy.take_if_due()
    assert policy.snapshots  # 12 messages retired, interval 3
    assert policy.latest.n_objects == 4
    with pytest.raises(ValueError):
        CheckpointPolicy(rt, interval=0)
