"""Tests for the locality-aware pack-file backend (PR 7).

Covers the Morton curve, segment layout (bucketing, sealing, dead-byte
accounting), curve neighborhoods, batched loads, and — the part the chaos
matrix leans on — abort-safe compaction: a compactor killed mid-rewrite
must leave the old layout byte-for-byte intact.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packfile import PackFileBackend, morton2
from repro.util.errors import ObjectNotFound


# ---------------------------------------------------------------- morton2
def test_morton2_interleaves_bits():
    assert morton2(0, 0) == 0
    assert morton2(1, 0) == 1
    assert morton2(0, 1) == 2
    assert morton2(1, 1) == 3
    assert morton2(2, 0) == 4
    # i=0b11 fills even bit positions, j=0b101 odd ones -> 0b100111
    assert morton2(3, 5) == 0b100111


def test_morton2_clusters_grid_blocks():
    # A 2x2 grid block is contiguous on the curve when block-aligned.
    codes = sorted(morton2(i, j) for i in (4, 5) for j in (6, 7))
    assert codes == list(range(codes[0], codes[0] + 4))


# ----------------------------------------------------------- basic layout
def test_store_rewrite_tracks_dead_bytes():
    pf = PackFileBackend()
    pf.store(1, b"hello")
    assert (pf.live_bytes, pf.dead_bytes) == (5, 0)
    pf.store(1, b"world!")
    assert pf.load(1) == b"world!"
    assert (pf.live_bytes, pf.dead_bytes) == (6, 5)


def test_append_keeps_one_extent():
    pf = PackFileBackend()
    pf.append(7, b"abc")
    pf.append(7, b"def")
    assert pf.load(7) == b"abcdef"
    assert pf.load_segments(7) == [b"abcdef"]
    assert pf.dead_bytes == 3  # the first copy moved to the tail


def test_missing_oid_raises_and_delete_is_tolerant():
    pf = PackFileBackend()
    with pytest.raises(ObjectNotFound):
        pf.load(99)
    with pytest.raises(ObjectNotFound):
        pf.size(99)
    pf.delete(99)  # runtime deletes unconditionally on migrate/destroy


def test_same_bucket_objects_share_a_segment():
    pf = PackFileBackend(bucket_shift=4)
    pf.note_locality(1, 3)
    pf.note_locality(2, 5)      # same bucket: 3 >> 4 == 5 >> 4 == 0
    pf.note_locality(3, 1000)   # a far bucket
    for oid in (1, 2, 3):
        pf.store(oid, bytes(16))
    e1, e2, e3 = (pf._extents[oid] for oid in (1, 2, 3))
    assert e1.seg == e2.seg
    assert e3.seg != e1.seg


def test_full_segment_is_sealed():
    pf = PackFileBackend(segment_bytes=32)
    pf.store(1, bytes(32))  # fills and seals the open segment
    pf.store(2, bytes(8))   # must open a fresh one (same default bucket)
    assert pf._extents[1].seg != pf._extents[2].seg
    assert pf.segments_created == 2


# ------------------------------------------------------------ neighborhood
def test_neighborhood_walks_curve_nearest_first():
    pf = PackFileBackend()
    for oid, key in [(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]:
        pf.note_locality(oid, key)
        pf.store(oid, b"x")
    assert pf.neighborhood(3, 2) == [2, 4]   # equidistant: lower side first
    assert pf.neighborhood(1, 2) == [2, 3]   # walks outward past the edge
    assert pf.neighborhood(3, 99) == [2, 4, 1, 5]  # self excluded
    assert pf.neighborhood(3, 0) == []


def test_neighborhood_anchors_unstored_oid_at_its_key():
    pf = PackFileBackend()
    for oid, key in [(1, 10), (2, 20), (3, 30)]:
        pf.note_locality(oid, key)
        pf.store(oid, b"x")
    pf.note_locality(9, 21)  # never stored
    assert pf.neighborhood(9, 2) == [2, 3]


def test_note_locality_reorders_stored_object():
    pf = PackFileBackend()
    for oid, key in [(1, 10), (2, 20), (3, 30)]:
        pf.note_locality(oid, key)
        pf.store(oid, b"x")
    pf.note_locality(1, 29)  # hop next to 3
    assert pf.neighborhood(3, 1) == [1]


# -------------------------------------------------------------- compaction
def _churn(pf, rounds=3, n=8, size=24):
    blobs = {oid: bytes([65 + oid]) * size for oid in range(n)}
    for _ in range(rounds):
        for oid, blob in blobs.items():
            pf.store(oid, blob)
    return blobs


def test_compaction_reclaims_dead_bytes_and_preserves_data():
    pf = PackFileBackend(segment_bytes=64, compact_ratio=0.3)
    blobs = _churn(pf)
    assert pf.compactions >= 1  # the rewrite churn must have triggered it
    for oid, blob in blobs.items():
        assert pf.load(oid) == blob
    assert pf.live_bytes == sum(len(b) for b in blobs.values())


def test_compaction_orders_extents_along_the_curve():
    pf = PackFileBackend(segment_bytes=1 << 20)
    # Store in curve-reverse order, then compact: physical order flips.
    for oid, key in [(1, 30), (2, 20), (3, 10)]:
        pf.note_locality(oid, key)
        pf.store(oid, bytes(8))
    pf.compact()
    offs = {oid: pf._extents[oid].off for oid in (1, 2, 3)}
    assert offs[3] < offs[2] < offs[1]
    assert pf.dead_bytes == 0


def test_killed_compaction_is_abort_safe():
    pf = PackFileBackend(
        segment_bytes=64, compact_ratio=0.3, fail_compaction_at=1
    )
    blobs = _churn(pf)
    assert pf.compaction_aborts == 1  # attempt 1 died mid-rewrite
    for oid, blob in blobs.items():  # ...and the old layout survived
        assert pf.load(oid) == blob
    pf.compact()  # attempts after the first run clean
    assert pf.dead_bytes == 0
    for oid, blob in blobs.items():
        assert pf.load(oid) == blob


def test_explicit_compact_kill_propagates():
    pf = PackFileBackend(fail_compaction_at=1)
    pf.store(1, b"abcd")
    with pytest.raises(RuntimeError):
        pf.compact()
    assert pf.load(1) == b"abcd"
    pf.compact()
    assert pf.load(1) == b"abcd"


# --------------------------------------------------------------- load_many
def test_load_many_groups_by_segment_and_skips_missing():
    pf = PackFileBackend()
    for oid in range(6):
        pf.store(oid, bytes([oid]) * 4)
    out = pf.load_many([1, 3, 99])
    assert out == {1: [b"\x01" * 4], 3: [b"\x03" * 4]}
    assert pf.batch_loads == 1
    assert pf.segments_touched == 1  # default keys cohabit one segment


def test_load_many_empty_batch():
    pf = PackFileBackend()
    assert pf.load_many([]) == {}
    assert pf.batch_loads == 0


# ----------------------------------------------------- model-based property
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["store", "append", "delete", "compact"]),
        st.integers(min_value=0, max_value=7),
        st.binary(max_size=32),
    ),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(ops=_OPS)
def test_packfile_matches_dict_model(ops):
    """Under any op interleaving the store behaves as a plain dict."""
    pf = PackFileBackend(segment_bytes=128, compact_ratio=0.4)
    model: dict[int, bytes] = {}
    for op, oid, blob in ops:
        if op == "store":
            pf.store(oid, blob)
            model[oid] = blob
        elif op == "append":
            pf.append(oid, blob)
            model[oid] = model.get(oid, b"") + blob
        elif op == "delete":
            pf.delete(oid)
            model.pop(oid, None)
        else:
            pf.compact()
    assert {oid: pf.load(oid) for oid in pf.stored_ids()} == model
    assert pf.live_bytes == sum(len(b) for b in model.values())
    assert pf.total_bytes() == pf.live_bytes
    assert pf.largest_object() == max(
        (len(b) for b in model.values()), default=0
    )
