"""Tests for the Chrome-trace / Perfetto exporter."""

import json

from repro.obs import LANES, to_chrome_trace, write_chrome_trace
from repro.testing.harness import RuntimeHarness
from repro.testing.workloads import WorkloadSpec


def _observed_events(seed=0, n_nodes=3):
    harness = RuntimeHarness(n_nodes=n_nodes, memory_bytes=20 * 1024)
    sub = harness.subscribe()
    harness.run_storm(WorkloadSpec(
        n_actors=10, payload_bytes=4096, initial_pulses=3,
        hops=5, fanout=2, seed=seed,
    ))
    return list(sub.events)


def test_trace_has_per_node_tracks_for_spans():
    events = _observed_events()
    doc = to_chrome_trace(events)
    rows = doc["traceEvents"]
    pids = {r["pid"] for r in rows if r["ph"] != "M"}
    assert pids == {0, 1, 2}
    # Every node that ran handlers has named process/thread tracks...
    names = {
        (r["pid"], r["args"]["name"])
        for r in rows if r["ph"] == "M" and r["name"] == "process_name"
    }
    assert names == {(0, "node 0"), (1, "node 1"), (2, "node 2")}
    lanes = {
        (r["pid"], r["tid"], r["args"]["name"])
        for r in rows if r["ph"] == "M" and r["name"] == "thread_name"
    }
    for pid in pids:
        for lane, tid in LANES.items():
            assert (pid, tid, lane) in lanes
    # ... and handler/disk/send spans land on their own lanes per node.
    spans = [r for r in rows if r["ph"] == "X"]
    for pid in pids:
        assert any(
            s["pid"] == pid and s["tid"] == LANES["handlers"]
            and s["cat"] == "handler" for s in spans
        )
        assert any(
            s["pid"] == pid and s["tid"] == LANES["disk"]
            and s["cat"] == "disk" for s in spans
        )
    assert any(s["tid"] == LANES["network"] for s in spans)


def test_span_timestamps_are_microseconds():
    events = _observed_events()
    doc = to_chrome_trace(events)
    spans = [r for r in doc["traceEvents"] if r["ph"] == "X"]
    handler_spans = [s for s in spans if s["cat"] == "handler"]
    source = [e for e in events if e.kind == "handler"]
    assert handler_spans[0]["ts"] == source[0].time * 1e6
    assert handler_spans[0]["dur"] == source[0].duration * 1e6
    assert all(s["dur"] >= 0 for s in spans)


def test_instants_and_residency_counters():
    events = _observed_events()
    doc = to_chrome_trace(events)
    rows = doc["traceEvents"]
    instants = [r for r in rows if r["ph"] == "i"]
    assert any(r["name"].startswith("evict oid") for r in instants)
    assert any(r["name"].startswith("enqueue oid") for r in instants)
    counters = [r for r in rows if r["ph"] == "C"]
    assert counters
    assert all(r["name"] == "resident bytes" for r in counters)
    assert all(r["args"]["bytes"] >= 0 for r in counters)


def test_write_chrome_trace_round_trips(tmp_path):
    events = _observed_events()
    path = tmp_path / "trace.json"
    doc = write_chrome_trace(events, str(path))
    loaded = json.loads(path.read_text())
    assert loaded == doc
    assert loaded["displayTimeUnit"] == "ms"
    assert loaded["otherData"]["clock"] == "virtual"


def test_empty_stream_exports_cleanly():
    doc = to_chrome_trace([])
    assert doc["traceEvents"] == []
    json.dumps(doc)
