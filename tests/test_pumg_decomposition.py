"""Tests for domain decomposition: blocks, quadtrees, coarse partitions."""

import pytest

from repro.geometry import PSLG, unit_square, pipe_cross_section
from repro.geometry.pslg import BoundingBox
from repro.pumg import (
    block_decomposition,
    partition_coarse_mesh,
    quadtree_decomposition,
)
from repro.mesh.sizing import uniform_sizing, point_source_sizing


# ------------------------------------------------------------------ blocks
def test_block_grid_shapes():
    blocks = block_decomposition(BoundingBox(0, 0, 1, 1), 3, 3)
    assert len(blocks) == 9
    total = sum(b.box.width * b.box.height for b in blocks)
    assert total == pytest.approx(1.0)


def test_block_neighbors_eight_connected():
    blocks = block_decomposition(BoundingBox(0, 0, 1, 1), 3, 3)
    center = blocks[4]  # (1,1)
    assert len(center.neighbors) == 8
    corner = blocks[0]
    assert len(corner.neighbors) == 3


def test_block_coloring_separates_neighbors():
    """Same-color blocks are never adjacent (not even diagonally)."""
    blocks = block_decomposition(BoundingBox(0, 0, 2, 2), 4, 4)
    for b in blocks:
        for n in b.neighbors:
            assert blocks[n].color != b.color
    assert {b.color for b in blocks} == {0, 1, 2, 3}


def test_block_grid_validation():
    with pytest.raises(ValueError):
        block_decomposition(BoundingBox(0, 0, 1, 1), 0, 2)
    with pytest.raises(ValueError):
        block_decomposition(BoundingBox(0, 0, 0, 0), 2, 2)


# ---------------------------------------------------------------- quadtree
def test_quadtree_decomposition_uniform():
    tree = quadtree_decomposition(
        BoundingBox(0, 0, 1, 1), uniform_sizing(0.1), granularity=4.0
    )
    # target leaf side 0.4 -> two levels of splits.
    assert tree.n_leaves == 16
    assert tree.is_balanced()


def test_quadtree_decomposition_graded():
    sizing = point_source_sizing([((0.0, 0.0), 0.02)], background=0.5)
    tree = quadtree_decomposition(
        BoundingBox(0, 0, 1, 1), sizing, granularity=4.0
    )
    corner = tree.leaf_at((0.01, 0.01))
    far = tree.leaf_at((0.99, 0.99))
    assert corner.depth > far.depth


def test_quadtree_granularity_validation():
    with pytest.raises(ValueError):
        quadtree_decomposition(BoundingBox(0, 0, 1, 1), uniform_sizing(1.0), 0.0)


# --------------------------------------------------------------- partition
def test_partition_covers_all_triangles():
    partition = partition_coarse_mesh(unit_square(), 4)
    assert partition.n_parts == 4
    assert all(p >= 0 for p in partition.coarse_triangle_parts)
    # Every part got some triangles (seeds exist).
    for p in range(4):
        assert partition.part_seeds[p]


def test_partition_interfaces_reference_two_parts():
    partition = partition_coarse_mesh(unit_square(), 3)
    for key, (a, b) in partition.interfaces.items():
        assert 0 <= a < b < 3
        # The interface edge must appear in both parts' boundary PSLGs.
        for part in (a, b):
            pts = set(map(tuple, partition.sub_pslgs[part].vertices))
            assert key[0] in pts and key[1] in pts


def test_partition_sub_pslgs_are_closed():
    """Each subdomain boundary must have even vertex degree (closed loops)."""
    partition = partition_coarse_mesh(unit_square(), 4)
    for sub in partition.sub_pslgs:
        degree = {}
        for i, j in sub.segments:
            degree[i] = degree.get(i, 0) + 1
            degree[j] = degree.get(j, 0) + 1
        assert all(d % 2 == 0 for d in degree.values())


def test_partition_works_on_domain_with_hole():
    partition = partition_coarse_mesh(pipe_cross_section(24), 4)
    assert partition.n_parts == 4
    assert partition.interfaces


def test_partition_single_part_has_no_interfaces():
    partition = partition_coarse_mesh(unit_square(), 1)
    assert partition.interfaces == {}


def test_partition_validation():
    with pytest.raises(ValueError):
        partition_coarse_mesh(unit_square(), 0)
