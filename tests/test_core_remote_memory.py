"""Backfill unit tests for the remote-memory out-of-core medium.

Covers the pool's byte accounting under overwrite/delete/failed-store,
ring server assignment, composition through the self-healing storage
stack (frames on the wire, retries against a flaky interconnect), and
exhaustion semantics (StorageFull is permanent: never retried, pool left
consistent).
"""

import random

import pytest

from repro.core import MRTS, MobileObject, attach_remote_memory, handler
from repro.core.remote_memory import MemoryPool, RemoteMemoryBackend
from repro.core.storage import (
    FRAME_OVERHEAD,
    CountingBackend,
    MemoryBackend,
    decode_frame,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing.faults import FaultPlan, StorageFault
from repro.util.errors import ConfigError, ObjectNotFound, StorageFull


class Blob(MobileObject):
    def __init__(self, pointer, size=50_000):
        super().__init__(pointer)
        # Incompressible payload: capacity tests measure true byte
        # accounting, which the compression tier would otherwise shrink.
        self.data = random.Random(pointer.oid).randbytes(size)
        self.touches = 0

    @handler
    def touch(self, ctx):
        self.touches += 1


def cluster(n=2, memory=120_000):
    return ClusterSpec(n_nodes=n, node=NodeSpec(cores=1, memory_bytes=memory))


# ------------------------------------------------------------ pool accounting
def test_pool_accounting_store_delete_roundtrip():
    rt = MRTS(cluster())
    pool = MemoryPool(1000)
    backend = RemoteMemoryBackend(rt, 0, pool)
    backend.store(1, b"x" * 300)
    assert (pool.used, pool.free) == (300, 700)
    assert backend.contains(1)
    assert backend.size(1) == 300
    assert backend.load(1) == b"x" * 300
    assert backend.stored_ids() == [1]
    backend.delete(1)
    assert (pool.used, pool.free) == (0, 1000)
    assert not backend.contains(1)


def test_pool_overwrite_charges_only_the_delta():
    rt = MRTS(cluster())
    pool = MemoryPool(1000)
    backend = RemoteMemoryBackend(rt, 0, pool)
    backend.store(1, b"a" * 400)
    backend.store(1, b"b" * 600)  # bigger: +200
    assert pool.used == 600
    backend.store(1, b"c" * 100)  # smaller: -500
    assert pool.used == 100
    assert backend.load(1) == b"c" * 100


def test_failed_store_leaves_pool_unchanged():
    rt = MRTS(cluster())
    pool = MemoryPool(1000)
    backend = RemoteMemoryBackend(rt, 0, pool)
    backend.store(1, b"x" * 900)
    with pytest.raises(StorageFull):
        backend.store(2, b"y" * 200)
    assert pool.used == 900
    assert not backend.contains(2)


def test_overwrite_that_would_exceed_capacity_counts_reclaimed_bytes():
    rt = MRTS(cluster())
    pool = MemoryPool(1000)
    backend = RemoteMemoryBackend(rt, 0, pool)
    backend.store(1, b"x" * 900)
    backend.store(1, b"y" * 1000)  # fits: the old 900 are reclaimed
    assert pool.used == 1000


def test_missing_object_semantics():
    rt = MRTS(cluster())
    backend = RemoteMemoryBackend(rt, 0, MemoryPool(100))
    with pytest.raises(ObjectNotFound):
        backend.load(9)
    with pytest.raises(ObjectNotFound):
        backend.size(9)
    backend.delete(9)  # idempotent no-op


def test_pool_capacity_must_be_positive():
    with pytest.raises(ConfigError):
        MemoryPool(0)
    with pytest.raises(ConfigError):
        MemoryPool(-5)


# ------------------------------------------------------------ server topology
def test_default_server_is_ring_neighbor():
    rt = MRTS(cluster(n=3))
    assert RemoteMemoryBackend(rt, 0, MemoryPool(10)).server_rank == 1
    assert RemoteMemoryBackend(rt, 2, MemoryPool(10)).server_rank == 0
    assert RemoteMemoryBackend(rt, 1, MemoryPool(10), server_rank=0).server_rank == 0


def test_attach_assigns_ring_servers_and_counting_stack():
    rt = MRTS(cluster(n=3))
    attach_remote_memory(rt, pool_bytes_per_node=1 << 20)
    assert [nrt.spill_server for nrt in rt.nodes] == [1, 2, 0]
    for nrt in rt.nodes:
        assert isinstance(nrt.storage, CountingBackend)


# ------------------------------------------------- self-healing stack on top
def test_pool_holds_checksummed_frames():
    """Bytes on the remote server carry the frame: a reader on the server
    side can validate them, and sizes account for the overhead."""
    rt = MRTS(cluster())
    pools = attach_remote_memory(rt, pool_bytes_per_node=1 << 20)
    nrt = rt.nodes[0]
    nrt.storage.store(7, b"p" * 100)
    assert nrt.storage.size(7) == 100  # frame stripped at the stack surface
    raw = pools[0].store.load(7)
    assert len(raw) == 100 + FRAME_OVERHEAD
    assert decode_frame(raw) == b"p" * 100
    assert pools[0].used == 100 + FRAME_OVERHEAD


def test_flaky_interconnect_absorbed_by_retries():
    rt = MRTS(cluster())
    pools = attach_remote_memory(
        rt, pool_bytes_per_node=10 << 20,
        fault_plan=FaultPlan(store_fail_rate=0.2, load_fail_rate=0.2, seed=5),
    )
    ptrs = [rt.create_object(Blob, 50_000, node=0) for _ in range(4)]
    for p in ptrs:
        rt.post(p, "touch")
    stats = rt.run()
    assert all(rt.get_object(p).touches == 1 for p in ptrs)
    assert stats.storage_retries > 0
    assert sum(pool.used for pool in pools) > 0


def test_fail_stop_interconnect_exhausts_retries_and_raises():
    rt = MRTS(cluster())
    attach_remote_memory(
        rt, pool_bytes_per_node=10 << 20,
        fault_plan=FaultPlan(fail_store_at=2, fail_stop=True, seed=6),
    )
    with pytest.raises(StorageFault):
        ptrs = [rt.create_object(Blob, 50_000, node=0) for _ in range(4)]
        for p in ptrs:
            rt.post(p, "touch")
        rt.run()
    assert rt.stats.storage_retries > 0  # it did try before giving up


def test_pool_exhaustion_is_permanent_not_retried():
    rt = MRTS(cluster())
    attach_remote_memory(rt, pool_bytes_per_node=60_000)
    with pytest.raises(StorageFull, match="exhausted"):
        ptrs = [rt.create_object(Blob, 50_000, node=0) for _ in range(4)]
        for p in ptrs:
            rt.post(p, "touch")
        rt.run()
    # StorageFull is permanent: the retry layer must not have burned
    # attempts on it.
    assert rt.stats.storage_retries == 0


# ------------------------------------------- eviction on peer pressure
def make_pressured_pool(capacity=1000):
    return MemoryPool(capacity, overflow=MemoryBackend())


def test_pressure_demotes_lru_entries_into_overflow():
    pool = make_pressured_pool()
    pool.put(1, b"a" * 400)
    pool.put(2, b"b" * 400)
    demoted = pool.put(3, b"c" * 400)  # needs 200 more: 1 is the LRU victim
    assert demoted == [1]
    assert pool.used == 800
    assert not pool.store.contains(1)
    assert pool.overflow.contains(1)
    assert pool.get(1) == b"a" * 400  # still readable, from the lower tier
    assert pool.evictions == 1
    assert pool.demoted_bytes == 400


def test_touch_protects_recently_used_entries():
    pool = make_pressured_pool()
    pool.put(1, b"a" * 400)
    pool.put(2, b"b" * 400)
    pool.touch(1)  # now 2 is the least recently used
    assert pool.put(3, b"c" * 400) == [2]
    assert pool.store.contains(1)
    assert pool.overflow.contains(2)


def test_get_refreshes_recency_like_touch():
    pool = make_pressured_pool()
    pool.put(1, b"a" * 400)
    pool.put(2, b"b" * 400)
    assert pool.get(1) == b"a" * 400  # a read is a touch
    assert pool.put(3, b"c" * 400) == [2]


def test_pressure_can_evict_several_victims():
    pool = make_pressured_pool()
    for oid in range(1, 5):
        pool.put(oid, b"x" * 250)  # full: 4 x 250
    demoted = pool.put(9, b"y" * 600)
    assert demoted == [1, 2, 3]  # strict LRU order
    assert pool.used == 250 + 600
    assert pool.evictions == 3
    assert pool.demoted_bytes == 750


def test_no_overflow_backend_keeps_hard_capacity():
    pool = MemoryPool(1000)  # no overflow: original behavior
    pool.put(1, b"a" * 900)
    with pytest.raises(StorageFull, match="exhausted"):
        pool.put(2, b"b" * 200)
    assert pool.used == 900
    assert pool.evictions == 0


def test_oversized_put_rejected_even_with_overflow():
    pool = make_pressured_pool(capacity=1000)
    pool.put(1, b"a" * 500)
    with pytest.raises(StorageFull):
        pool.put(2, b"b" * 1500)  # larger than the whole slab
    assert pool.used == 500  # nothing was demoted for a doomed store
    assert pool.evictions == 0


def test_replacement_supersedes_stale_overflow_copy():
    pool = make_pressured_pool()
    pool.put(1, b"old" * 100)
    pool.put(2, b"b" * 800)  # demotes 1 under pressure
    assert pool.overflow.contains(1)
    pool.put(1, b"new" * 50)  # fresh RAM copy is now the truth
    assert not pool.overflow.contains(1)
    assert pool.get(1) == b"new" * 50
    assert pool.overflow_loads == 0


def test_overflow_reads_are_counted():
    pool = make_pressured_pool()
    pool.put(1, b"a" * 600)
    pool.put(2, b"b" * 600)  # demotes 1
    assert pool.get(1) == b"a" * 600
    assert pool.get(1) == b"a" * 600
    assert pool.overflow_loads == 2


def test_drop_clears_both_tiers():
    pool = make_pressured_pool()
    pool.put(1, b"a" * 600)
    pool.put(2, b"b" * 600)  # 1 demoted, 2 in RAM
    pool.drop(1)
    pool.drop(2)
    pool.drop(3)  # idempotent on a miss
    assert pool.used == 0
    assert not pool.holds(1) and not pool.holds(2)
    with pytest.raises(ObjectNotFound):
        pool.get(1)


def test_append_evicts_under_pressure_too():
    pool = make_pressured_pool()
    pool.put(1, b"a" * 500)
    pool.put(2, b"b" * 400)
    assert pool.append(2, b"+" * 200) == [1]
    assert pool.get(2) == b"b" * 400 + b"+" * 200
    assert pool.used == 600


def test_peak_used_is_a_high_watermark():
    pool = make_pressured_pool()
    pool.put(1, b"a" * 900)
    pool.drop(1)
    pool.put(2, b"b" * 100)
    assert pool.used == 100
    assert pool.peak_used == 900


def test_evict_candidates_previews_without_moving():
    pool = make_pressured_pool()
    pool.put(1, b"a" * 300)
    pool.put(2, b"b" * 300)
    pool.put(3, b"c" * 300)
    assert pool.evict_candidates(400) == [1, 2]
    assert pool.used == 900  # a preview, not an eviction
    assert pool.evictions == 0


def test_backend_surface_spans_both_tiers():
    """RemoteMemoryBackend semantics hold when entries live in overflow."""
    rt = MRTS(cluster())
    pool = make_pressured_pool()
    backend = RemoteMemoryBackend(rt, 0, pool)
    backend.store(1, b"a" * 600)
    backend.store(2, b"b" * 600)  # 1 demoted under pressure
    assert backend.contains(1) and backend.contains(2)
    assert backend.size(1) == 600  # served from the overflow tier
    assert backend.load(1) == b"a" * 600
    assert backend.stored_ids() == [1, 2]
    backend.delete(1)
    assert not backend.contains(1)
