"""In-process unit tests for the distributed store machinery.

Everything under :mod:`repro.dist` below the coordinator is
transport-agnostic (any object with ``send``/``recv``/``poll`` works), so
these tests drive the *same* classes the forked workers run — tiered
residency, peer memory server/client, the shard worker's exactly-once
control loop, the event codec and the watermark merger — entirely
in-process, where coverage can see them.
"""

import multiprocessing as mp
import threading

import pytest

from repro.core import MobileObject, handler
from repro.core.mobile import MobilePointer
from repro.core.remote_memory import MemoryPool
from repro.core.storage import MemoryBackend
from repro.dist import (
    PeerClient,
    PeerMemoryServer,
    ShardWorker,
    TieredStore,
    WireChaos,
    decode_event,
    encode_event,
)
from repro.dist.events import EVENT_TYPES, EventMerger
from repro.dist.store import class_path, resolve_class
from repro.dist.wire import Ack, Create, PeerOp, Post, Shutdown
from repro.obs.events import EvictEvent, EventBus, HandlerSpan, LoadEvent
from repro.util.errors import ObjectNotFound


class Probe(MobileObject):
    """A small object with a payload and handlers for every ACK shape."""

    def __init__(self, ptr, size=2000):
        super().__init__(ptr)
        self.data = bytes(size)
        self.count = 0

    @handler
    def bump(self, ctx, k=1):
        self.count += k

    @handler
    def grow(self, ctx, nbytes):
        self.data += bytes(nbytes)

    @handler(readonly=True)
    def peek(self, ctx):
        pass

    @handler
    def spray(self, ctx, target_oid):
        ctx.post(MobilePointer(target_oid, 0), "bump", 2)

    @handler
    def boom(self, ctx):
        raise RuntimeError("boom")

    def plain(self, ctx):  # not a handler: posting it must fail
        pass


def probe(oid, size=2000):
    return Probe(MobilePointer(oid, 0), size=size)


def tiered(budget=6000, peer=None):
    return TieredStore(budget, MemoryBackend(), peer=peer)


# ------------------------------------------------------------- class paths
def test_class_path_round_trip():
    path = class_path(Probe)
    assert resolve_class(path) is Probe


def test_resolve_class_rejects_non_mobile_types():
    with pytest.raises(TypeError):
        resolve_class("builtins:dict")


# ------------------------------------------------------------ tiered store
def test_store_admits_and_serves_live_objects():
    store = tiered()
    store.admit(1, Probe, probe(1).pack())
    obj = store.get(1)
    assert isinstance(obj, Probe)
    assert store.get(1) is obj  # L0 hit: same instance
    assert store.owned() == {1}
    assert store.counters()["loads"] == 0


def test_store_evicts_lru_and_promotes_from_disk():
    store = tiered(budget=6000)
    for oid in (1, 2, 3):  # ~2KB each: the third admit evicts oid 1
        store.admit(oid, Probe, probe(oid).pack())
    assert store.evictions >= 1
    assert store.disk.contains(1)  # write-through landed on disk
    obj = store.get(1)  # promotion: revived from packed bytes
    assert obj.count == 0
    assert store.loads == 1
    assert store.counters()["live"] <= 3


def test_store_eviction_prefers_least_recently_used():
    store = tiered(budget=6000)
    store.admit(1, Probe, probe(1).pack())
    store.admit(2, Probe, probe(2).pack())
    store.get(1)  # refresh 1: now 2 is the LRU victim
    store.admit(3, Probe, probe(3).pack())
    assert 1 in store._live
    assert 2 not in store._live


def test_touch_size_recharges_after_mutation():
    store = tiered(budget=50_000)
    store.admit(1, Probe, probe(1).pack())
    before = store.used
    store.get(1).data += bytes(4000)
    store.touch_size(1)
    assert store.used > before
    assert store._charged[1] == store.get(1).nbytes()


def test_unknown_oid_raises_object_not_found():
    with pytest.raises(ObjectNotFound):
        tiered().get(42)


def test_admit_overwrites_a_previous_life():
    """Re-homing re-admits an oid the store may already track."""
    store = tiered()
    store.admit(1, Probe, probe(1).pack())
    store.get(1).count = 99
    fresh = probe(1)
    fresh.count = 7
    store.admit(1, Probe, fresh.pack())
    assert store.get(1).count == 7
    assert store.used == store._charged[1]


def test_store_emits_evict_and_load_events():
    store = tiered(budget=6000)
    seen = []
    store.on_event = seen.append
    for oid in (1, 2, 3):
        store.admit(oid, Probe, probe(oid).pack())
    store.get(1)
    kinds = {type(e) for e in seen}
    assert EvictEvent in kinds and LoadEvent in kinds


# ------------------------------------------------------- peer memory tiers
def served_pool(capacity=100_000, overflow=True):
    """A live PeerMemoryServer thread and a client across a real pipe."""
    client_end, server_end = mp.Pipe()
    pool = MemoryPool(capacity, overflow=MemoryBackend() if overflow else None)
    server = PeerMemoryServer(server_end, pool).start()
    return PeerClient(client_end, timeout_s=5.0), server, pool


def test_peer_put_get_round_trip():
    client, server, pool = served_pool()
    assert client.put(1, b"x" * 500)
    assert client.get(1) == b"x" * 500
    assert client.get(2) is None  # a miss, not an error
    assert not client.dead
    assert pool.used == 500
    client.close()


def test_peer_server_evicts_under_pressure_into_overflow():
    client, server, pool = served_pool(capacity=1000)
    assert client.put(1, b"a" * 600)
    assert client.put(2, b"b" * 600)  # slab full: 1 demotes to overflow
    assert pool.evictions == 1
    assert pool.overflow.contains(1)
    assert client.get(1) == b"a" * 600  # served from the demoted tier
    assert pool.overflow_loads == 1
    client.close()


def test_peer_server_refuses_when_no_overflow():
    client, server, pool = served_pool(capacity=1000, overflow=False)
    assert client.put(1, b"a" * 900)
    assert not client.put(2, b"b" * 500)  # refused, reply received
    assert not client.dead  # a refusal is an answer, not a dead link
    assert pool.used == 900
    client.close()


def test_peer_server_handles_has_del_and_bad_ops():
    pool = MemoryPool(1000)
    server = PeerMemoryServer(conn=None, pool=pool)
    assert server.handle(PeerOp("put", 1, b"x" * 10)).ok
    assert server.handle(PeerOp("has", 1)).ok
    assert server.handle(PeerOp("del", 1)).ok
    assert not server.handle(PeerOp("has", 1)).ok
    bad = server.handle(PeerOp("zap", 1))
    assert not bad.ok and "bad op" in bad.error


def test_peer_client_timeout_marks_peer_dead_permanently():
    client_end, _server_end = mp.Pipe()  # nobody is serving
    client = PeerClient(client_end, timeout_s=0.05)
    assert client.get(1) is None
    assert client.dead
    assert client.failures == 1
    assert not client.put(1, b"x")  # later calls are cheap no-ops
    assert client.failures == 1


def test_tiered_store_survives_peer_death_via_write_through():
    """The worker-kill guarantee: peer RAM is a cache, disk is the truth."""
    client_end, _server_end = mp.Pipe()
    dead_peer = PeerClient(client_end, timeout_s=0.05)
    store = tiered(budget=6000, peer=dead_peer)
    for oid in (1, 2, 3):
        store.admit(oid, Probe, probe(oid).pack())
    assert store.evictions >= 1
    obj = store.get(1)  # peer miss -> disk fallback
    assert isinstance(obj, Probe)
    assert store.peer_fallbacks >= 1
    assert store.peer_hits == 0


def test_tiered_store_reads_prefer_the_peer():
    client, server, pool = served_pool()
    store = tiered(budget=6000, peer=client)
    for oid in (1, 2, 3):
        store.admit(oid, Probe, probe(oid).pack())
    store.get(1)
    assert store.peer_hits >= 1
    assert store.counters()["peer_puts"] >= 1
    client.close()


# ------------------------------------------------------------ shard worker
class Sink:
    """A capture-only connection end for driving ShardWorker.handle."""

    def __init__(self):
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)


def worker_with_sink(budget=50_000):
    sink = Sink()
    worker = ShardWorker(0, sink, tiered(budget))
    return worker, sink


def test_worker_create_then_post_updates_replica():
    worker, sink = worker_with_sink()
    assert worker.handle(Create(1, 10, class_path(Probe), probe(10).pack()))
    assert worker.handle(Post(2, 10, "bump", (5,), {}))
    create_ack, post_ack = sink.sent
    assert create_ack.error is None and post_ack.error is None
    assert post_ack.state is not None  # mutating handler ships new state
    revived = probe(10)
    revived.unpack(post_ack.state)
    assert revived.count == 5
    assert any(row[0] == "handler" for row in post_ack.events)


def test_worker_dedupes_via_cached_ack():
    worker, sink = worker_with_sink()
    worker.handle(Create(1, 10, class_path(Probe), probe(10).pack()))
    worker.handle(Post(2, 10, "bump", (), {}))
    worker.handle(Post(2, 10, "bump", (), {}))  # exact redelivery
    assert worker.duplicates == 1
    assert worker.store.get(10).count == 1  # executed once
    assert sink.sent[1] is sink.sent[2]  # the very same cached ACK


def test_worker_readonly_handler_ships_no_state():
    worker, sink = worker_with_sink()
    worker.handle(Create(1, 10, class_path(Probe), probe(10).pack()))
    worker.handle(Post(2, 10, "peek", (), {}))
    assert sink.sent[-1].state is None
    assert sink.sent[-1].error is None


def test_worker_posts_ride_the_ack():
    worker, sink = worker_with_sink()
    worker.handle(Create(1, 10, class_path(Probe), probe(10).pack()))
    worker.handle(Post(2, 10, "spray", (77,), {}))
    assert sink.sent[-1].posts == ((77, "bump", (2,), {}),)


def test_worker_handler_errors_become_error_acks():
    worker, sink = worker_with_sink()
    worker.handle(Create(1, 10, class_path(Probe), probe(10).pack()))
    worker.handle(Post(2, 10, "boom", (), {}))
    assert "RuntimeError" in sink.sent[-1].error
    worker.handle(Post(3, 10, "plain", (), {}))  # undecorated method
    assert "not a handler" in sink.sent[-1].error
    worker.handle(Post(4, 99, "bump", (), {}))  # unknown object
    assert sink.sent[-1].error is not None


def test_worker_shutdown_ack_carries_stats():
    worker, sink = worker_with_sink()
    worker.handle(Create(1, 10, class_path(Probe), probe(10).pack()))
    worker.handle(Post(2, 10, "bump", (), {}))
    assert not worker.handle(Shutdown(3))  # False: the loop must exit
    stats = sink.sent[-1].stats
    assert stats["delivered"] == 1
    assert stats["owned"] == 1


def test_worker_serve_forever_over_a_real_pipe():
    ours, theirs = mp.Pipe()
    worker = ShardWorker(0, theirs, tiered())
    thread = threading.Thread(target=worker.serve_forever, daemon=True)
    thread.start()
    ours.send(Create(1, 10, class_path(Probe), probe(10).pack()))
    ours.send(Post(2, 10, "bump", (3,), {}))
    ours.send(Shutdown(3))
    acks = [ours.recv() for _ in range(3)]
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert [a.msg_id for a in acks] == [1, 2, 3]
    assert acks[2].stats["delivered"] == 1


# ------------------------------------------------------------- event relay
def test_event_codec_round_trips_every_registered_kind():
    samples = {
        "handler": HandlerSpan(time=1.0, node=0, oid=1, handler="h",
                               duration=0.1, comp_s=0.1, queue_len=0),
        "evict": EvictEvent(time=2.0, node=1, oid=2, nbytes=10, clean=False,
                            memory_used=5),
        "load": LoadEvent(time=3.0, node=0, oid=3, nbytes=7,
                          background=False, memory_used=2),
    }
    for kind, event in samples.items():
        assert kind in EVENT_TYPES
        row = encode_event(event)
        assert row[0] == kind
        assert decode_event(row) == event


def test_event_codec_rejects_unknown_kinds():
    with pytest.raises(ValueError):
        decode_event(("warp", 1.0, 0))


def ev(t, node=0):
    return LoadEvent(time=t, node=node, oid=1, nbytes=1, background=False,
                     memory_used=0)


def drain(sub):
    out = [e.time for e in sub.events]
    sub.events.clear()
    return out


def test_merger_holds_events_until_all_watermarks_pass():
    bus = EventBus()
    sub = bus.subscribe()
    merger = EventMerger(bus)
    merger.add_source(0)
    merger.add_source(1)
    merger.feed(0, [ev(1.0), ev(3.0)], watermark=3.0)
    # Source 1 is silent at clock 0: nothing may release yet.
    assert merger.merged == 0
    merger.feed(1, [ev(2.0, node=1)], watermark=2.0)
    # Horizon is now 2.0: events at 1.0 and 2.0 release, 3.0 stays held.
    assert drain(sub) == [1.0, 2.0]
    merger.feed(1, [], watermark=10.0)
    assert drain(sub) == [3.0]
    assert merger.merged == 3


def test_merger_orders_across_sources():
    bus = EventBus()
    sub = bus.subscribe()
    merger = EventMerger(bus)
    merger.add_source(0)
    merger.add_source(1)
    merger.feed(0, [ev(5.0)], watermark=5.0)
    merger.feed(1, [ev(1.0, node=1), ev(4.0, node=1)], watermark=9.0)
    assert drain(sub) == [1.0, 4.0, 5.0]
    assert merger.reordered >= 1


def test_merger_close_retires_a_dead_sources_clock():
    bus = EventBus()
    sub = bus.subscribe()
    merger = EventMerger(bus)
    merger.add_source(0)
    merger.add_source(1)
    merger.feed(0, [ev(2.0)], watermark=2.0)
    assert merger.merged == 0  # gated on silent source 1
    merger.close(1)  # crash: source 1 stops holding the line back
    assert drain(sub) == [2.0]


def test_merger_flush_drains_everything():
    bus = EventBus()
    sub = bus.subscribe()
    merger = EventMerger(bus)
    merger.feed(0, [ev(1.0), ev(9.0)], watermark=1.0)
    merger.feed(1, [ev(5.0, node=1)], watermark=0.5)
    merger.flush()
    assert drain(sub) == [1.0, 5.0, 9.0]


# -------------------------------------------------------------- wire chaos
def test_wire_chaos_is_deterministic_per_seed():
    a = WireChaos(seed=7, drop_rate=0.3, dup_rate=0.3)
    b = WireChaos(seed=7, drop_rate=0.3, dup_rate=0.3)
    rows_a = [(a.send_copies(m), a.drop_ack(m)) for m in range(200)]
    rows_b = [(b.send_copies(m), b.drop_ack(m)) for m in range(200)]
    assert rows_a == rows_b
    assert a.dropped_sends > 0 and a.duplicated_sends > 0 and a.dropped_acks > 0


def test_wire_chaos_caps_consecutive_drops():
    chaos = WireChaos(seed=1, drop_rate=1.0, max_drops_per_msg=3)
    copies = [chaos.send_copies(5) for _ in range(10)]
    assert copies[:3] == [0, 0, 0]
    assert all(c >= 1 for c in copies[3:])  # the cap forces delivery
    assert [chaos.drop_ack(5) for _ in range(10)][3:] == [False] * 7


def test_wire_chaos_off_by_default():
    chaos = WireChaos(seed=0)
    assert all(chaos.send_copies(m) == 1 for m in range(50))
    assert not any(chaos.drop_ack(m) for m in range(50))
