"""Tests for the storage layer backends."""

import pytest
from hypothesis import given, strategies as st

from repro.core import CountingBackend, FileBackend, MemoryBackend
from repro.util.errors import ObjectNotFound


@pytest.fixture(params=["memory", "file", "packfile"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    elif request.param == "packfile":
        from repro.core.packfile import PackFileBackend

        yield PackFileBackend()
    else:
        b = FileBackend(tmp_path / "spill")
        yield b
        b.cleanup()


def test_store_load_roundtrip(backend):
    backend.store(1, b"hello world")
    assert backend.load(1) == b"hello world"
    assert backend.contains(1)
    assert backend.size(1) == 11


def test_load_missing_raises(backend):
    with pytest.raises(ObjectNotFound):
        backend.load(99)
    with pytest.raises(ObjectNotFound):
        backend.size(99)


def test_overwrite_replaces(backend):
    backend.store(1, b"aaaa")
    backend.store(1, b"bb")
    assert backend.load(1) == b"bb"
    assert backend.size(1) == 2


def test_delete_is_idempotent(backend):
    backend.store(1, b"x")
    backend.delete(1)
    backend.delete(1)
    assert not backend.contains(1)


def test_stored_ids_and_totals(backend):
    backend.store(1, b"aa")
    backend.store(2, b"bbbb")
    assert sorted(backend.stored_ids()) == [1, 2]
    assert backend.total_bytes() == 6
    assert backend.largest_object() == 4


def test_largest_object_empty(backend):
    assert backend.largest_object() == 0


def test_file_backend_tempdir_selfcleans():
    b = FileBackend()  # own temp dir
    b.store(7, b"data")
    root = b.root
    assert root.exists()
    b.cleanup()
    assert not any(root.glob("obj-*.bin")) if root.exists() else True


def test_file_backend_survives_size_queries(tmp_path):
    b = FileBackend(tmp_path)
    b.store(3, b"12345")
    # Fresh instance over the same directory can still read the file.
    b2 = FileBackend(tmp_path)
    assert b2.load(3) == b"12345"
    assert b2.size(3) == 5


def test_counting_backend_accounts():
    counting = CountingBackend(MemoryBackend())
    counting.store(1, b"abcd")
    counting.store(2, b"xy")
    counting.load(1)
    counting.load(1)
    assert counting.bytes_written == 6
    assert counting.bytes_read == 8
    assert counting.stores == 2
    assert counting.loads == 2
    assert counting.contains(1)
    assert counting.size(2) == 2
    counting.delete(2)
    assert not counting.contains(2)
    assert sorted(counting.stored_ids()) == [1]


@given(
    blobs=st.dictionaries(
        st.integers(min_value=0, max_value=50),
        st.binary(min_size=0, max_size=200),
        min_size=1,
        max_size=20,
    )
)
def test_memory_backend_roundtrip_property(blobs):
    """Property: store-then-load returns the exact bytes for every key."""
    backend = MemoryBackend()
    for oid, data in blobs.items():
        backend.store(oid, data)
    for oid, data in blobs.items():
        assert backend.load(oid) == data
    assert backend.total_bytes() == sum(len(d) for d in blobs.values())


# -------------------------------------------------------- batched loads (PR 7)
def test_load_many_is_best_effort(backend):
    backend.store(1, b"aa")
    backend.store(2, b"bbb")
    out = backend.load_many([1, 2, 99])
    assert out == {1: [b"aa"], 2: [b"bbb"]}  # missing oids simply absent


def test_load_many_counting_accounts_found_only():
    counting = CountingBackend(MemoryBackend())
    counting.store(1, b"abcd")
    counting.store(2, b"xy")
    out = counting.load_many([1, 2, 42])
    assert set(out) == {1, 2}
    assert counting.loads == 2  # the missing oid is not charged
    assert counting.bytes_read == 6


def test_load_many_through_full_stack():
    from repro.core.config import MRTSConfig
    from repro.core.storage import build_storage_stack

    stack = build_storage_stack(MRTSConfig(), MemoryBackend())
    blobs = {oid: bytes([oid]) * 200 for oid in range(5)}
    for oid, blob in blobs.items():
        stack.store(oid, blob)
    stack.append(2, b"tail")  # a delta frame rides along
    out = stack.load_many([0, 2, 4, 77])
    assert b"".join(out[0]) == blobs[0]
    assert b"".join(out[2]) == blobs[2] + b"tail"
    assert b"".join(out[4]) == blobs[4]
    assert 77 not in out


def test_load_many_skips_corrupt_members():
    from repro.core.storage import ChecksummedBackend, encode_frame

    inner = MemoryBackend()
    stack = ChecksummedBackend(inner)
    stack.store(1, b"good payload")
    inner.store(2, encode_frame(b"torn")[:-3])  # torn write residue
    out = stack.load_many([1, 2])
    assert set(out) == {1}
    assert stack.corrupt_loads == 1
