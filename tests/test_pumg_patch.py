"""Tests for patch meshing helpers: mesh_subdomain and patch_refine."""

import pytest

from repro.geometry import PSLG, unit_square
from repro.geometry.pslg import BoundingBox
from repro.mesh.quality import triangle_area
from repro.mesh.sizing import uniform_sizing
from repro.pumg import mesh_subdomain, patch_refine
from repro.pumg.decomposition import partition_coarse_mesh


# ----------------------------------------------------------- mesh_subdomain
def test_mesh_subdomain_square():
    pslg = unit_square()
    tri = mesh_subdomain(pslg, seeds=[(0.5, 0.5)])
    area = sum(triangle_area(*tri.coords(t)) for t in tri.triangles())
    assert area == pytest.approx(1.0)
    assert tri.check_delaunay() == []


def test_mesh_subdomain_keeps_only_seeded_regions():
    """An hourglass of two squares: only the seeded one survives."""
    pslg = PSLG()
    pslg.add_loop([(0, 0), (1, 0), (1, 1), (0, 1)])
    pslg.add_loop([(2, 0), (3, 0), (3, 1), (2, 1)])
    tri = mesh_subdomain(pslg, seeds=[(0.5, 0.5)])
    area = sum(triangle_area(*tri.coords(t)) for t in tri.triangles())
    assert area == pytest.approx(1.0)  # the second square was dropped


def test_mesh_subdomain_no_seed_raises():
    pslg = unit_square()
    with pytest.raises(ValueError, match="seed"):
        mesh_subdomain(pslg, seeds=[(5.0, 5.0)])


def test_mesh_subdomain_partition_parts_mesh_cleanly():
    partition = partition_coarse_mesh(unit_square(), 3)
    total = 0.0
    for p in range(3):
        tri = mesh_subdomain(partition.sub_pslgs[p], partition.part_seeds[p])
        total += sum(triangle_area(*tri.coords(t)) for t in tri.triangles())
    assert total == pytest.approx(1.0, rel=1e-9)


# ------------------------------------------------------------- patch_refine
def _grid_points(n):
    return [(i / n, j / n) for i in range(n + 1) for j in range(n + 1)]


def test_patch_refine_inserts_only_in_owner_box():
    pts = _grid_points(4)
    owner = BoundingBox(0.0, 0.0, 0.5, 0.5)
    result = patch_refine(
        pts, [], uniform_sizing(0.08), owner, in_domain=lambda p: True
    )
    for p in result.new_points:
        assert 0.0 <= p[0] <= 0.5 and 0.0 <= p[1] <= 0.5
    assert result.new_points  # target size below grid spacing: must insert


def test_patch_refine_multiple_owner_boxes():
    pts = _grid_points(4)
    boxes = [BoundingBox(0, 0, 0.5, 0.5), BoundingBox(0.5, 0, 1.0, 0.5)]
    result = patch_refine(
        pts, [], uniform_sizing(0.08), boxes, in_domain=lambda p: True
    )
    for p in result.new_points:
        assert p[1] <= 0.5 + 1e-9  # lower half only


def test_patch_refine_respects_in_domain():
    pts = _grid_points(4)
    owner = BoundingBox(0, 0, 1, 1)
    # Domain excludes everything: nothing is ever bad.
    result = patch_refine(
        pts, [], uniform_sizing(0.05), owner, in_domain=lambda p: False
    )
    assert result.new_points == []
    assert result.clean


def test_patch_refine_splits_boundary_segments():
    pts = [(0.0, 0.0), (1.0, 0.0), (0.5, 0.4)]
    segs = [((0.0, 0.0), (1.0, 0.0))]
    owner = BoundingBox(0, 0, 1, 1)
    result = patch_refine(
        pts, segs, uniform_sizing(0.2), owner, in_domain=lambda p: True
    )
    assert result.boundary_splits
    for pu, pv, mid in result.boundary_splits:
        assert mid == ((pu[0] + pv[0]) / 2.0, (pu[1] + pv[1]) / 2.0)


def test_patch_refine_too_few_points_is_clean():
    result = patch_refine(
        [(0.0, 0.0)], [], uniform_sizing(0.1),
        BoundingBox(0, 0, 1, 1), in_domain=lambda p: True,
    )
    assert result.clean and not result.new_points


def test_patch_refine_min_length_floor():
    pts = _grid_points(2)
    result = patch_refine(
        pts, [], uniform_sizing(0.01), BoundingBox(0, 0, 1, 1),
        in_domain=lambda p: True, min_length=0.4,
    )
    # Floor close to grid spacing: barely anything can be refined.
    assert len(result.new_points) <= 4
