"""Protocol fuzz/negative tests for the service wire format.

Two layers: the framing functions in isolation (pure, driven through
BytesIO), and a live :class:`~repro.testing.service.ServiceFixture`
taking hostile input through real sockets.  The contract under test is
the one the protocol module documents — every malformed frame gets a
clean error reply on a still-open connection, only an over-cap frame
closes the session, a mid-request disconnect abandons nothing — plus
the resource postcondition that matters for a multi-tenant server: no
admission reservation and no OOC residency is ever held on behalf of
bytes that never became a job.
"""

import io

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_reply,
    read_frame,
    validate_request,
)
from repro.testing.invariants import check_ooc_layer
from repro.testing.service import ServiceFixture


# --------------------------------------------------------------- framing
def test_frame_round_trip():
    payload = {"op": "submit", "job": {"method": "updr", "h": 0.2}}
    assert decode_frame(encode_frame(payload).rstrip(b"\n")) == payload


def test_encode_rejects_oversized_payload():
    with pytest.raises(ProtocolError) as exc:
        encode_frame({"blob": "x" * MAX_FRAME_BYTES})
    assert exc.value.code == "frame_too_large"


@pytest.mark.parametrize(
    "line, code",
    [
        (b"not json", "bad_json"),
        (b"\xff\xfe\x00garbage", "bad_json"),
        (b"[1, 2, 3]", "bad_frame"),
        (b'"a bare string"', "bad_frame"),
        (b"42", "bad_frame"),
    ],
)
def test_decode_frame_error_codes(line, code):
    with pytest.raises(ProtocolError) as exc:
        decode_frame(line)
    assert exc.value.code == code


def test_read_frame_eof_and_partial_line_mean_disconnect():
    assert read_frame(io.BytesIO(b"")) is None
    # Bytes with no trailing newline: the client died mid-request.
    assert read_frame(io.BytesIO(b'{"op": "pi')) is None


def test_read_frame_never_buffers_past_the_cap():
    stream = io.BytesIO(b"x" * (4 * MAX_FRAME_BYTES) + b"\n")
    with pytest.raises(ProtocolError) as exc:
        read_frame(stream)
    assert exc.value.code == "frame_too_large"
    assert stream.tell() <= MAX_FRAME_BYTES + 1


@pytest.mark.parametrize(
    "payload, code",
    [
        ({}, "missing_op"),
        ({"op": 7}, "missing_op"),
        ({"op": "transmogrify"}, "unknown_op"),
        ({"op": "status", "job_id": 12}, "bad_field"),
        ({"op": "submit", "tenant": ["a"]}, "bad_field"),
    ],
)
def test_validate_request_error_codes(payload, code):
    with pytest.raises(ProtocolError) as exc:
        validate_request(payload)
    assert exc.value.code == code


def test_error_reply_shapes():
    reply = error_reply(ProtocolError("bad_json", "nope"), op="submit")
    assert reply == {
        "ok": False,
        "op": "submit",
        "error": {"code": "bad_json", "message": "nope"},
    }
    generic = error_reply(ValueError("boom"))
    assert generic["error"]["code"] == "internal"
    assert "boom" in generic["error"]["message"]


# ------------------------------------------------------------- live fuzz
_MALFORMED = [
    (b"not json\n", "bad_json"),
    (b"\xfe\xfd\x00\n", "bad_json"),
    (b"[1,2,3]\n", "bad_frame"),
    (b"{}\n", "missing_op"),
    (b'{"op":"zap"}\n', "unknown_op"),
    (b'{"op":"status","job_id":7}\n', "bad_field"),
    (b'{"op":"status","job_id":"j9999"}\n', "not_found"),
    (b'{"op":"result","job_id":"j9999"}\n', "not_found"),
    (b'{"op":"submit"}\n', "bad_field"),
    (b'{"op":"submit","job":{"method":"voodoo"}}\n', "bad_job"),
    (b'{"op":"submit","job":{"method":"updr","h":50.0}}\n', "bad_job"),
    (b'{"op":"submit","job":{"method":"updr","warp":9}}\n', "bad_job"),
]


def test_malformed_frames_get_error_replies_on_a_live_session():
    """Every bad frame: clean error reply, session stays up, no residue."""
    with ServiceFixture() as svc:
        with svc.client() as client:
            for frame, code in _MALFORMED:
                client.send_raw(frame)
                reply = client.read_reply()
                assert reply is not None, f"connection died on {frame!r}"
                assert reply["ok"] is False
                assert reply["error"]["code"] == code, frame
                # The session survived: a real op still round-trips.
                assert client.ping()["pong"] is True
        # Nothing was reserved or half-created for any hostile frame.
        assert svc.manager.admission.reserved_bytes == 0
        assert svc.manager.admission.queued == 0
        assert svc.manager.list_jobs() == []


def test_oversized_frame_closes_only_that_connection():
    with ServiceFixture() as svc:
        with svc.client() as client:
            client.send_raw(b"x" * (MAX_FRAME_BYTES + 64) + b"\n")
            reply = client.read_reply()
            assert reply is not None
            assert reply["error"]["code"] == "frame_too_large"
            # The stream position is unrecoverable: server hangs up.
            assert client.read_reply() is None
        # ... but the server itself is fine for the next client.
        with svc.client() as client:
            assert client.ping()["pong"] is True
        assert svc.manager.admission.reserved_bytes == 0


def test_mid_request_disconnect_abandons_nothing():
    with ServiceFixture() as svc:
        client = svc.client()
        client.send_raw(b'{"op":"submit","job":{"method":"up')  # no newline
        client.close()
        with svc.client() as probe:
            assert probe.ping()["pong"] is True
        assert svc.manager.list_jobs() == []
        assert svc.manager.admission.reserved_bytes == 0


def test_fuzz_leaves_no_ooc_residue_around_real_jobs():
    """Hostile frames interleaved with a real job: the job is untouched
    and its runtime's OOC layer ends with zero invariant violations."""
    with ServiceFixture(keep_runtimes=True) as svc:
        with svc.client() as client:
            client.send_raw(_MALFORMED[0][0])
            assert client.read_reply()["ok"] is False
            job_id = client.submit(
                {"method": "updr", "geometry": "unit_square", "h": 0.2,
                 "memory_bytes": 256 * 1024})["job_id"]
            client.send_raw(_MALFORMED[4][0])
            assert client.read_reply()["error"]["code"] == "unknown_op"
            status = client.wait(job_id, timeout=60.0)
            assert status["state"] == "finished"
            assert status["invariant_violations"] == 0
        job = svc.manager.get(job_id)
        for rank, node in enumerate(job.runner.runtime.nodes):
            assert check_ooc_layer(node.ooc, f"node{rank}") == []
        assert svc.manager.admission.reserved_bytes == 0
