"""Tests for PSLG inputs and the canned domains."""

import pytest

from repro.geometry import (
    PSLG,
    circle_domain,
    gear_domain,
    key_domain,
    pipe_cross_section,
    plate_with_holes,
    unit_square,
)


def test_add_vertex_and_segment():
    pslg = PSLG()
    i = pslg.add_vertex((0, 0))
    j = pslg.add_vertex((1, 0))
    pslg.add_segment(i, j)
    assert pslg.segments == [(0, 1)]


def test_add_segment_validation():
    pslg = PSLG()
    pslg.add_vertex((0, 0))
    with pytest.raises(IndexError):
        pslg.add_segment(0, 5)
    with pytest.raises(ValueError):
        pslg.add_segment(0, 0)


def test_add_loop_closes():
    pslg = PSLG()
    idx = pslg.add_loop([(0, 0), (1, 0), (0, 1)])
    assert len(idx) == 3
    assert (idx[-1], idx[0]) in pslg.segments or (idx[0], idx[-1]) in pslg.segments


def test_add_loop_too_short():
    with pytest.raises(ValueError):
        PSLG().add_loop([(0, 0), (1, 0)])


def test_bounding_box():
    pslg = unit_square()
    box = pslg.bounding_box()
    assert (box.xmin, box.ymin, box.xmax, box.ymax) == (0, 0, 1, 1)
    assert box.width == 1 and box.height == 1
    assert box.center == (0.5, 0.5)


def test_bounding_box_empty_raises():
    with pytest.raises(ValueError):
        PSLG().bounding_box()


def test_validate_accepts_good_pslgs():
    for pslg in (
        unit_square(),
        circle_domain(16),
        pipe_cross_section(24),
        plate_with_holes(2),
        key_domain(),
        gear_domain(6),
    ):
        pslg.validate()  # should not raise


def test_validate_rejects_duplicate_vertices():
    pslg = PSLG()
    pslg.add_vertex((0, 0))
    pslg.add_vertex((0, 0))
    with pytest.raises(ValueError, match="duplicate"):
        pslg.validate()


def test_validate_rejects_crossing_segments():
    pslg = PSLG()
    a = pslg.add_vertex((0, 0))
    b = pslg.add_vertex((1, 1))
    c = pslg.add_vertex((0, 1))
    d = pslg.add_vertex((1, 0))
    pslg.add_segment(a, b)
    pslg.add_segment(c, d)
    with pytest.raises(ValueError, match="intersect"):
        pslg.validate()


def test_scaled_copy():
    pslg = unit_square().scaled(2.0)
    assert pslg.bounding_box().width == 2.0
    assert len(pslg.segments) == 4


def test_pipe_has_hole():
    pslg = pipe_cross_section()
    assert pslg.holes == [(0.0, 0.0)]
    assert len(pslg.segments) == 2 * 48


def test_pipe_parameter_validation():
    with pytest.raises(ValueError):
        pipe_cross_section(inner=1.5, outer=1.0)


def test_plate_hole_count():
    pslg = plate_with_holes(3)
    assert len(pslg.holes) == 3
    with pytest.raises(ValueError):
        plate_with_holes(2, width=1.0, radius=0.9)


def test_gear_validation():
    with pytest.raises(ValueError):
        gear_domain(teeth=2)
    with pytest.raises(ValueError):
        gear_domain(root=1.5)


def test_bbox_expand_contains():
    box = unit_square().bounding_box().expanded(0.5)
    assert box.contains((-0.4, -0.4))
    assert not box.contains((-0.6, 0.0))
