"""Unit tests for the seeded workload generators."""

import pytest

from repro.testing import WorkloadSpec, access_trace, object_sizes


# ------------------------------------------------------------- object sizes
def test_object_sizes_bounds_and_reproducibility():
    sizes = object_sizes(200, seed=5, min_bytes=100, max_bytes=10_000)
    assert len(sizes) == 200
    assert all(100 <= s <= 10_000 for s in sizes)
    assert sizes == object_sizes(200, seed=5, min_bytes=100, max_bytes=10_000)
    assert sizes != object_sizes(200, seed=6, min_bytes=100, max_bytes=10_000)


def test_object_sizes_validation():
    with pytest.raises(ValueError):
        object_sizes(-1)
    with pytest.raises(ValueError):
        object_sizes(3, min_bytes=0)
    with pytest.raises(ValueError):
        object_sizes(3, min_bytes=100, max_bytes=50)


# ------------------------------------------------------------- access traces
def test_access_trace_shape_and_range():
    trace = access_trace(50, 1000, seed=1)
    assert len(trace) == 1000
    assert all(0 <= oid < 50 for oid in trace)
    assert trace == access_trace(50, 1000, seed=1)


def test_access_trace_is_skewed():
    """With 20% hot ids taking 80% of accesses, the hot set dominates."""
    n_objects, n_ops = 100, 5000
    trace = access_trace(n_objects, n_ops, seed=2,
                         hot_fraction=0.2, hot_weight=0.8)
    n_hot = int(n_objects * 0.2)
    hot_share = sum(1 for oid in trace if oid < n_hot) / n_ops
    assert hot_share > 0.7  # well above the 0.2 a uniform trace would give


def test_access_trace_uniform_when_unskewed():
    trace = access_trace(10, 5000, seed=3, hot_fraction=1.0, hot_weight=1.0)
    counts = [trace.count(i) for i in range(10)]
    assert min(counts) > 300  # roughly uniform across all ids


def test_access_trace_validation():
    with pytest.raises(ValueError):
        access_trace(0, 10)
    with pytest.raises(ValueError):
        access_trace(10, 10, hot_fraction=0.0)
    with pytest.raises(ValueError):
        access_trace(10, 10, hot_weight=1.5)


# ------------------------------------------------------------- workload spec
def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(n_actors=0)
    with pytest.raises(ValueError):
        WorkloadSpec(hops=-1)
    with pytest.raises(ValueError):
        WorkloadSpec(grow_every=0)
