"""The concurrent multi-tenant soak: served state == solo state, exactly.

A quick smoke soak runs unconditionally; the full ISSUE-sized soak
(4 tenants x 16 jobs through real sockets) is marked ``slow`` but still
runs in the default suite.  Both use the exact oracle described in
:mod:`repro.testing.service`: every job's final-state digest must equal
a solo run of the identical spec, and every phase boundary of every job
must pass the runtime invariant checks.
"""

import pytest

from repro.serve.admission import AdmissionPolicy
from repro.testing.service import ServiceFixture, run_soak, soak_jobs


def test_soak_script_is_deterministic_and_covers_every_tenant():
    a = soak_jobs(4, 16, seed=7)
    b = soak_jobs(4, 16, seed=7)
    assert a == b
    assert {body["tenant"] for body in a} == {
        f"tenant-{i}" for i in range(4)}
    assert soak_jobs(4, 16, seed=8) != a


def test_smoke_soak_two_tenants():
    report = run_soak(n_tenants=2, n_jobs=6, seed=1, workers=2)
    assert report.ok, report.render()
    assert report.finished == 6
    assert all(v["digest_match"] for v in report.jobs)
    assert all(v["violations"] == 0 for v in report.jobs)


@pytest.mark.slow
def test_full_soak_four_tenants_sixteen_jobs():
    report = run_soak(n_tenants=4, n_jobs=16, seed=0, workers=4)
    assert report.ok, report.render()
    assert report.finished == 16
    assert report.jobs_per_sec > 0
    # Per-tenant coverage: every tenant saw its whole slice finish.
    per_tenant = {}
    for v in report.jobs:
        per_tenant[v["tenant"]] = per_tenant.get(v["tenant"], 0) + 1
    assert per_tenant == {f"tenant-{i}": 4 for i in range(4)}


@pytest.mark.slow
def test_soak_under_queueing_pressure_still_exact():
    """A soft limit of one envelope forces the queue path for nearly
    every job; admission order changes, final states must not."""
    policy = AdmissionPolicy(
        soft_residency_bytes=512 * 1024,
        hard_residency_bytes=1 << 20,
        tenant_quota_bytes=256 * (1 << 20),
    )
    report = run_soak(n_tenants=2, n_jobs=8, seed=3, workers=4,
                      policy=policy)
    assert report.ok, report.render()
    assert report.finished == 8


def test_service_metrics_scrape_after_work():
    with ServiceFixture() as svc:
        with svc.client() as client:
            job_id = client.submit(
                {"method": "pcdm", "geometry": "unit_square", "h": 0.2,
                 "tenant": "scrape", "memory_bytes": 256 * 1024})["job_id"]
            assert client.wait(job_id, timeout=60.0)["state"] == "finished"
            scrape = client.metrics()
            text = scrape["prometheus"]
            assert "# TYPE mrts_jobs_total counter" in text
            assert 'tenant="scrape"' in text
            pressure = scrape["pressure"]
            assert pressure["reserved_bytes"] == 0
            assert pressure["tenants"]["scrape"]["jobs_admitted"] == 1
