"""Property tests for the pluggable codec registry (PR 4).

Every registered codec must satisfy the Serializer contract:

* ``unpack(pack(state)) == state`` for arbitrary states of its shape;
* for delta-capable codecs, an append-log of ``[full, delta, delta...]``
  segments reassembles through ``unpack_segments`` to exactly the state a
  single full pack would produce — including after compaction (a fresh
  full pack of the evolved state);
* ``size_estimate`` (when provided) is a positive int;
* packs survive the compression tier and the CRC32 frame layer, and a
  corrupted compressed frame is *rejected*, never silently inflated.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import (
    AppendStateCodec,
    BytesAppendCodec,
    MeshPatchCodec,
    Pickle5Codec,
    get_codec,
    register_codec,
    registered_codecs,
)
from repro.core.storage import (
    ChecksummedBackend,
    CompressingBackend,
    CompressionPolicy,
    FLAG_COMPRESSED,
    MemoryBackend,
)
from repro.util.errors import CorruptObject, SerializationError

FLOATS = st.floats(allow_nan=False, allow_infinity=False, width=32)
POINTS = st.lists(st.tuples(FLOATS, FLOATS), max_size=40)
RESIDUE = st.dictionaries(
    st.sampled_from(["region_id", "round", "name", "flag"]),
    st.one_of(st.integers(), st.text(max_size=8), st.booleans()),
    max_size=4,
)
PLAIN_STATES = st.dictionaries(
    st.text(min_size=1, max_size=6),
    st.one_of(st.integers(), st.binary(max_size=64), st.text(max_size=16),
              st.lists(st.integers(), max_size=8)),
    max_size=5,
)


def mesh_state(points, residue):
    state = dict(residue)
    state["points"] = [(float(x), float(y)) for x, y in points]
    return state


def bytes_state(payload, residue):
    state = dict(residue)
    state["payload"] = payload
    return state


# ------------------------------------------------------------- round trips
@given(state=PLAIN_STATES)
def test_pickle_round_trip(state):
    codec = get_codec("pickle")
    assert codec.unpack(codec.pack(state)) == state


@given(state=PLAIN_STATES, buf=st.binary(max_size=256))
def test_pickle5_round_trip_with_out_of_band_buffers(state, buf):
    codec = get_codec("pickle5")
    state = dict(state)
    state["big"] = bytearray(buf)  # bytearray travels out-of-band
    got = codec.unpack(codec.pack(state))
    assert got == state
    assert isinstance(got["big"], bytearray)


@given(points=POINTS, residue=RESIDUE)
def test_mesh_patch_round_trip(points, residue):
    codec = get_codec("mesh-patch")
    state = mesh_state(points, residue)
    assert codec.unpack(codec.pack(state)) == state


@given(payload=st.binary(max_size=512), residue=RESIDUE)
def test_bytes_append_round_trip(payload, residue):
    codec = get_codec("bytes-append")
    state = bytes_state(payload, residue)
    assert codec.unpack(codec.pack(state)) == state


@given(state=PLAIN_STATES)
def test_snapshot_delta_round_trip(state):
    codec = get_codec("snapshot-delta")
    assert codec.unpack(codec.pack(state)) == state


def test_every_registered_codec_round_trips():
    """Each registry entry round-trips a state of its expected shape."""
    shapes = {
        "pickle": {"region_id": 7, "data": b"abc"},
        "pickle5": {"region_id": 7, "data": bytearray(b"abc")},
        "snapshot-delta": {"region_id": 7, "elements": 12.5},
        "mesh-patch": mesh_state([(0.5, 1.5), (2.0, -3.0)], {"region_id": 7}),
        "bytes-append": bytes_state(b"grow" * 4, {"hits": 2}),
    }
    registry = registered_codecs()
    assert set(shapes) == set(registry)
    for name, codec in registry.items():
        state = shapes[name]
        assert codec.unpack(codec.pack(state)) == state, name


# ---------------------------------------------------------- delta contract
@settings(max_examples=60)
@given(
    start=POINTS,
    appends=st.lists(POINTS, min_size=1, max_size=4),
    residue=RESIDUE,
)
def test_mesh_patch_delta_log_equals_full_pack(start, appends, residue):
    codec = get_codec("mesh-patch")
    state = mesh_state(start, residue)
    segments = [codec.pack(state)]
    for i, extra in enumerate(appends):
        token = codec.delta_token(state)
        state = dict(state, points=state["points"]
                     + [(float(x), float(y)) for x, y in extra])
        state["round"] = i  # residue churns between spills too
        delta = codec.pack_delta(state, token)
        assert delta is not None
        segments.append(delta)
    assert codec.unpack_segments(segments) == state
    # Compaction equivalence: a fresh full pack of the evolved state
    # must describe the identical state in one segment.
    assert codec.unpack(codec.pack(state)) == state


@settings(max_examples=60)
@given(
    start=st.binary(max_size=128),
    appends=st.lists(st.binary(min_size=1, max_size=64),
                     min_size=1, max_size=4),
)
def test_bytes_append_delta_log_equals_full_pack(start, appends):
    codec = get_codec("bytes-append")
    state = bytes_state(start, {"hits": 0})
    segments = [codec.pack(state)]
    for chunk in appends:
        token = codec.delta_token(state)
        state = bytes_state(state["payload"] + chunk,
                            {"hits": state["hits"] + 1})
        segments.append(codec.pack_delta(state, token))
    assert codec.unpack_segments(segments) == state


def test_snapshot_delta_last_writer_wins():
    codec = get_codec("snapshot-delta")
    segs = [codec.pack({"round": i}) for i in range(4)]
    assert codec.unpack_segments(segs) == {"round": 3}


def test_pack_delta_rejects_foreign_tokens_with_full_spill():
    codec = get_codec("mesh-patch")
    state = mesh_state([(1.0, 2.0)], {})
    assert codec.pack_delta(state, 5) is None     # token beyond the items
    assert codec.pack_delta(state, -1) is None
    assert codec.pack_delta(state, "base") is None


def test_size_estimates_are_positive_and_track_growth():
    mesh = get_codec("mesh-patch")
    small = mesh.size_estimate(mesh_state([(0.0, 0.0)], {}))
    big = mesh.size_estimate(mesh_state([(0.0, 0.0)] * 100, {}))
    assert 0 < small < big
    assert big - small == 99 * 16  # 16 B per appended point
    assert get_codec("pickle").size_estimate({"a": 1}) is None


def test_mesh_patch_rejects_malformed_states():
    codec = get_codec("mesh-patch")
    with pytest.raises(SerializationError):
        codec.pack({"no_points_field": 1})
    with pytest.raises(SerializationError):
        codec.pack(mesh_state([], {}) | {"points": [(1.0, 2.0, 3.0)]})
    with pytest.raises(SerializationError):
        codec.unpack_segments([])


def test_registry_lookup_and_collision():
    assert sorted(registered_codecs()) == [
        "bytes-append", "mesh-patch", "pickle", "pickle5", "snapshot-delta",
    ]
    with pytest.raises(KeyError, match="no codec registered"):
        get_codec("nope")
    with pytest.raises(ValueError, match="already registered"):
        register_codec("pickle", get_codec("pickle"))
    register_codec("pickle", get_codec("pickle"), replace=True)  # allowed


# ------------------------------------- codecs x compression x frame x CRC
def _stack():
    inner = MemoryBackend()
    frames = ChecksummedBackend(inner)
    comp = CompressingBackend(frames, CompressionPolicy(min_bytes=64))
    return inner, frames, comp


@settings(max_examples=40)
@given(
    start=st.binary(min_size=200, max_size=400),
    appends=st.lists(st.binary(min_size=80, max_size=200),
                     min_size=1, max_size=3),
)
def test_delta_log_through_compressed_checksummed_stack(start, appends):
    """Full store + delta appends, stored compressed, reassemble exactly."""
    codec = BytesAppendCodec()
    # Compressible payloads: repeat each drawn chunk.
    state = bytes_state(start * 8, {"hits": 0})
    _, _, comp = _stack()
    comp.store(1, codec.pack(state))
    for chunk in appends:
        token = codec.delta_token(state)
        state = bytes_state(state["payload"] + chunk * 8,
                            {"hits": state["hits"] + 1})
        comp.append(1, codec.pack_delta(state, token))
    assert codec.unpack_segments(comp.load_segments(1)) == state
    assert comp.compressed_frames > 0
    assert comp.bytes_out < comp.bytes_in  # the tier actually shrank bytes


@settings(max_examples=40)
@given(points=st.lists(st.tuples(FLOATS, FLOATS), min_size=30, max_size=80),
       data=st.data())
def test_corrupt_compressed_frame_is_rejected_not_inflated(points, data):
    codec = MeshPatchCodec()
    payload = codec.pack(mesh_state(points, {"region_id": 3}))
    inner, frames, comp = _stack()
    comp.store(1, payload)
    raw = bytearray(inner.load(1))
    pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1),
                    label="corrupt_at")
    raw[pos] ^= data.draw(st.integers(min_value=1, max_value=255),
                          label="xor")
    inner.store(1, bytes(raw))
    with pytest.raises(CorruptObject):
        comp.load_segments(1)
    assert frames.corrupt_loads > 0


def test_tiny_and_incompressible_payloads_stay_raw():
    import random

    _, _, comp = _stack()
    comp.store(1, b"x" * 16)  # below min_bytes
    noise = random.Random(0).randbytes(4096)
    comp.store(2, noise)      # deflate cannot shrink it
    assert comp.raw_frames == 2 and comp.compressed_frames == 0
    assert comp.load(1) == b"x" * 16
    assert comp.load(2) == noise


def test_compressed_flag_is_set_on_the_frame():
    inner, frames, comp = _stack()
    comp.store(1, bytes(2048))
    from repro.core.storage import decode_frame_ex

    _, flags = decode_frame_ex(inner.load(1))
    assert flags & FLAG_COMPRESSED


def test_append_state_codec_base_defaults():
    codec = AppendStateCodec()
    state = {"items": [1, 2, 3], "tag": "x"}
    assert codec.unpack(codec.pack(state)) == state
    assert codec.size_estimate(state) is None  # no fixed per-item size
    token = codec.delta_token(state)
    grown = {"items": [1, 2, 3, 4], "tag": "y"}
    assert codec.unpack_segments(
        [codec.pack(state), codec.pack_delta(grown, token)]
    ) == grown
