"""Regression tests for the out-of-core fast path.

Pins the three behaviors the fast path introduced:

* **dirty-aware spills** — a load / read-only-handler / evict cycle calls
  ``storage.store()`` exactly zero times (the storage copy is already
  current), while a mutation makes the next spill pay the write-back;
* **pipelined write-behind** — a dirty spill's bytes are durable
  immediately (Python time) but its virtual disk charge drains behind,
  overlapping the disk read of the object the eviction made room for;
* **completion barrier** — re-loading an object whose own store is still
  in flight waits for the store's virtual completion first.
"""

import pytest

from repro.core import MRTS, MobileObject, handler
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing import assert_invariants

seen_first_bytes = []


class Page(MobileObject):
    """Fixed-size payload: reads are read-only, pokes mutate in place."""

    def __init__(self, ptr, size=4000):
        super().__init__(ptr)
        self.blob = bytes(size)

    @handler(readonly=True)
    def read(self, ctx):
        seen_first_bytes.append(self.blob[:1])

    @handler
    def poke(self, ctx):
        self.blob = b"x" + self.blob[1:]


class Blob(MobileObject):
    def __init__(self, ptr, size=1000):
        super().__init__(ptr)
        self.payload = bytes(size)


def one_node(memory, **node_kwargs):
    return ClusterSpec(
        n_nodes=1, node=NodeSpec(cores=1, memory_bytes=memory, **node_kwargs)
    )


# ------------------------------------------------------------ clean spills
def test_clean_reload_cycle_performs_zero_stores():
    """load → read-only handler → evict must not call storage.store()."""
    del seen_first_bytes[:]
    rt = MRTS(one_node(6000))  # fits exactly one Page at a time
    p1 = rt.create_object(Page)
    p2 = rt.create_object(Page)  # spills p1 (dirty from creation)
    rt.post(p1, "read")
    rt.run()  # loads p1, spilling p2 (also dirty from creation)
    nrt = rt.nodes[0]
    base_stores = nrt.storage.stores
    base_clean = nrt.ooc.clean_evictions

    # Ping-pong read-only traffic: every round evicts a clean page.
    for _ in range(4):
        rt.post(p2, "read")
        rt.run()
        rt.post(p1, "read")
        rt.run()
    assert nrt.storage.stores == base_stores
    assert nrt.ooc.clean_evictions > base_clean
    assert len(seen_first_bytes) == 9

    # A mutation flips the dirty bit: exactly one more write-back.
    rt.post(p1, "poke")
    rt.run()
    rt.post(p2, "read")  # forces p1 out, dirty this time
    rt.run()
    assert nrt.storage.stores == base_stores + 1
    rt.post(p1, "read")
    rt.run()
    assert seen_first_bytes[-1] == b"x"  # the write-back kept the update
    assert_invariants(rt)


def test_readonly_handler_does_not_mark_dirty():
    rt = MRTS(one_node(1 << 20))
    p = rt.create_object(Page)
    nrt = rt.nodes[0]
    assert nrt.ooc.is_dirty(p.oid)  # fresh state: storage has no copy
    rt.run()
    # Spill + reload establishes a current storage copy.
    rt._evict_now(nrt, p.oid)
    assert rt.get_object(p) is not None
    assert not nrt.ooc.is_dirty(p.oid)
    rt.post(p, "read")
    rt.run()
    assert not nrt.ooc.is_dirty(p.oid)
    rt.post(p, "poke")
    rt.run()
    assert nrt.ooc.is_dirty(p.oid)


# ------------------------------------------------- write-behind pipelining
def test_write_behind_overlaps_store_with_load():
    """Victim store charges drain concurrently with the target's read.

    Three disk channels so queueing never hides the ordering: with the
    barrier, A's re-load starts only after A's own in-flight store drain
    completes (t = s), never before; B's store drains in parallel with
    the read instead of serializing in front of it (total 2s, not 3s).
    """
    rt = MRTS(one_node(1500, disk_channels=3))
    a = rt.create_object(Blob)
    b = rt.create_object(Blob)  # spills a; store is durable immediately
    nrt = rt.nodes[0]
    assert nrt.storage.contains(a.oid)
    assert a.oid in nrt.write_behind.pending
    size_a = nrt.ooc.table[a.oid].nbytes

    rt._evict_now(nrt, b.oid)  # second in-flight store drain
    assert nrt.storage.contains(b.oid)
    assert b.oid in nrt.write_behind.pending

    s = rt.cluster[0].disk.service_time(size_a)  # equal sizes, equal s
    proc = rt.engine.process(rt._load_blocking(nrt, a.oid))
    rt.engine.run(until=proc)
    # Barrier: read could only start at s (A's drain done) → finishes 2s.
    # Overlap: B's drain rode along in [0, s]; serialized would be 3s.
    assert rt.engine.now == pytest.approx(2 * s, rel=1e-9)
    assert not nrt.write_behind.pending
    assert nrt.ooc.is_resident(a.oid)
    assert not nrt.ooc.is_dirty(a.oid)


def test_reeviction_after_clean_load_is_free():
    rt = MRTS(one_node(1500, disk_channels=2))
    a = rt.create_object(Blob)
    rt.create_object(Blob)  # spills a (dirty)
    nrt = rt.nodes[0]
    proc = rt.engine.process(rt._load_blocking(nrt, a.oid))
    rt.engine.run(until=proc)

    stores = nrt.storage.stores
    clean = nrt.ooc.clean_evictions
    rt._evict_now(nrt, a.oid)  # untouched since the load: clean spill
    assert nrt.storage.stores == stores
    assert a.oid not in nrt.write_behind.pending  # no virtual charge either
    assert nrt.ooc.clean_evictions == clean + 1
    assert nrt.storage.contains(a.oid)  # old copy still serves reloads
