"""Tests for the HandlerContext API surface (what applications program to)."""

import pytest

from repro.core import (
    CostModel,
    MobileObject,
    MRTS,
    MRTSConfig,
    Task,
    handler,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


def rt_with(cores=2, n_nodes=1, memory=1 << 22, **kw):
    cluster = ClusterSpec(
        n_nodes=n_nodes, node=NodeSpec(cores=cores, memory_bytes=memory)
    )
    return MRTS(cluster, **kw)


class Probe(MobileObject):
    def __init__(self, pointer):
        super().__init__(pointer)
        self.observations = {}

    @handler
    def observe(self, ctx, peers):
        self.observations["node"] = ctx.node
        self.observations["now"] = ctx.now
        self.observations["resident"] = [ctx.is_resident(p) for p in peers]
        self.observations["peeked"] = [
            getattr(ctx.peek(p), "oid", None) for p in peers
        ]

    @handler
    def parallel_region(self, ctx, n_tasks, dur):
        makespan = ctx.run_tasks([Task(dur) for _ in range(n_tasks)])
        self.observations["makespan"] = makespan

    @handler
    def manage(self, ctx, target):
        ctx.lock(target)
        self.observations["locked"] = True
        ctx.set_priority(target, 5.0)
        ctx.unlock(target)

    @handler
    def bad_charge(self, ctx):
        ctx.charge(-1.0)

    @handler
    def noop(self, ctx):
        pass


def test_ctx_observation_fields():
    rt = rt_with()
    a = rt.create_object(Probe)
    b = rt.create_object(Probe)
    rt.post(a, "observe", [b])
    rt.run()
    obs = rt.get_object(a).observations
    assert obs["node"] == 0
    assert obs["now"] >= 0.0
    assert obs["resident"] == [True]
    assert obs["peeked"] == [b.oid]


def test_ctx_peek_remote_returns_none():
    rt = rt_with(n_nodes=2)
    a = rt.create_object(Probe, node=0)
    b = rt.create_object(Probe, node=1)
    rt.post(a, "observe", [b])
    rt.run()
    obs = rt.get_object(a).observations
    assert obs["resident"] == [False]
    assert obs["peeked"] == [None]


def test_ctx_run_tasks_uses_all_cores():
    rt = rt_with(cores=4)
    p = rt.create_object(Probe)
    rt.post(p, "parallel_region", 8, 1.0)
    stats = rt.run()
    makespan = rt.get_object(p).observations["makespan"]
    # 8 x 1 s tasks on 4 workers: ~2 s, not 8 s.
    assert 1.9 < makespan < 2.5
    # The makespan was charged as compute time.
    assert stats.comp_time >= makespan


def test_ctx_run_tasks_respects_executor_config():
    rt = rt_with(cores=4, config=MRTSConfig(executor="serial"))
    p = rt.create_object(Probe)
    rt.post(p, "parallel_region", 8, 1.0)
    rt.run()
    assert rt.get_object(p).observations["makespan"] >= 8.0


def test_ctx_lock_priority_unlock():
    rt = rt_with()
    a = rt.create_object(Probe)
    b = rt.create_object(Probe)
    rt.post(a, "manage", b)
    rt.run()
    ooc = rt.nodes[0].ooc
    assert not ooc.is_locked(b.oid)          # unlocked again
    assert ooc.table[b.oid].priority == 5.0  # hint stuck
    assert b.priority == 5.0                 # mirrored in the pointer


def test_ctx_negative_charge_rejected():
    rt = rt_with()
    p = rt.create_object(Probe)
    rt.post(p, "bad_charge")
    with pytest.raises(ValueError):
        rt.run()


def test_ctx_boost_schedule_orders_service():
    """A boosted object is served before earlier-ready ones."""
    order = []

    class Recorder(MobileObject):
        def __init__(self, pointer, tag):
            super().__init__(pointer)
            self.tag = tag

        @handler
        def mark(self, ctx):
            order.append(self.tag)

    class Booster(MobileObject):
        @handler
        def go(self, ctx, first, second):
            ctx.post(first, "mark")
            ctx.post(second, "mark")
            ctx.boost_schedule(second, 10.0)

    rt = rt_with(cores=1)
    first = rt.create_object(Recorder, "first")
    second = rt.create_object(Recorder, "second")
    booster = rt.create_object(Booster)
    rt.post(booster, "go", first, second)
    rt.run()
    assert order == ["second", "first"]


def test_ctx_create_places_on_requested_node():
    created = {}

    class Factory(MobileObject):
        @handler
        def make(self, ctx):
            created["local"] = ctx.create(Probe)
            created["remote"] = ctx.create(Probe, node=1)

    rt = rt_with(n_nodes=2)
    f = rt.create_object(Factory, node=0)
    rt.post(f, "make")
    rt.run()
    assert rt.object_location(created["local"]) == 0
    assert rt.object_location(created["remote"]) == 1
