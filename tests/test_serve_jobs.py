"""Job specs, the mesh-job runner, and the async job manager.

The load-bearing facts proven here:

* a :class:`~repro.serve.meshjob.JobSpec` is the *entire* input — two
  runs of the same spec produce identical state digests, which is what
  entitles the soak and chaos tests to exact equality oracles;
* checkpoint/resume round-trips through bytes and lands on the same
  final state as an uninterrupted run, under genuine spill pressure;
* the manager's admission path (reject / queue / FIFO-promote), the
  tenant storage-quota ledger, the lifecycle event stream and the
  Prometheus rendering all behave as the server ops assume.
"""

import pytest

from repro.obs.events import EventBus, JobEvent
from repro.obs.metrics import render_prometheus
from repro.serve.admission import AdmissionPolicy
from repro.serve.jobs import JobManager
from repro.serve.meshjob import (
    JobCheckpoint,
    JobSpec,
    JobSpecError,
    MeshJobRunner,
    run_job_solo,
)

SMALL = dict(method="updr", geometry="unit_square", h=0.2,
             memory_bytes=256 * 1024)
# Tight enough that the runtime genuinely spills between phases.
SPILLY = dict(method="updr", geometry="unit_square", h=0.09, nx=3, ny=3,
              memory_bytes=48 * 1024)


# -------------------------------------------------------------- JobSpec
def test_jobspec_from_request_round_trips():
    spec = JobSpec.from_request(dict(SMALL, tenant="acme", seed=3))
    assert spec.method == "updr"
    assert spec.tenant == "acme"
    assert JobSpec.from_request(spec.to_dict()) == spec


def test_jobspec_estimated_bytes_is_the_envelope():
    spec = JobSpec(method="pcdm", n_nodes=3, memory_bytes=1 << 20)
    assert spec.estimated_bytes == 3 * (1 << 20)


@pytest.mark.parametrize(
    "body",
    [
        dict(SMALL, method="voodoo"),              # unknown method
        dict(SMALL, geometry="klein_bottle"),      # unknown geometry
        dict(SMALL, h=50.0),                       # out of bounds
        dict(SMALL, nx="three"),                   # wrong type
        dict(SMALL, warp_factor=9),                # unknown field
        dict(SMALL, memory_bytes=1),               # below the floor
    ],
)
def test_jobspec_rejects_bad_requests(body):
    with pytest.raises(JobSpecError) as exc:
        JobSpec.from_request(body)
    assert exc.value.code == "bad_job"


# --------------------------------------------------------------- runner
@pytest.mark.parametrize("method", ["updr", "nupdr", "pcdm"])
def test_runner_is_deterministic_per_spec(method):
    spec = JobSpec.from_request(dict(SMALL, method=method))
    a, b = run_job_solo(spec), run_job_solo(spec)
    assert a.violations == [] and b.violations == []
    assert a.state_digest() == b.state_digest()
    assert a.result_summary()["n_points"] > 0


def test_checkpoint_resume_matches_uninterrupted_run():
    spec = JobSpec.from_request(SPILLY)
    reference = run_job_solo(spec)
    assert reference.stored_bytes() > 0, "spec must actually spill"

    runner = MeshJobRunner(spec)
    runner.start()
    runner.step()
    assert not runner.converged
    ckpt = JobCheckpoint.from_bytes(runner.snapshot().to_bytes())
    resumed = MeshJobRunner.resume(ckpt)
    resumed.run_to_completion()
    assert resumed.violations == []
    assert resumed.state_digest() == reference.state_digest()


def test_snapshot_is_illegal_mid_phase():
    runner = MeshJobRunner(JobSpec.from_request(SMALL))
    runner.start()
    runner.begin_phase()
    with pytest.raises(JobSpecError):
        runner.snapshot()


def test_result_summary_shape():
    summary = run_job_solo(JobSpec.from_request(SMALL)).result_summary()
    for key in ("n_points", "phases", "converged", "virtual_makespan_s",
                "bytes_stored", "bytes_loaded", "state_digest",
                "invariant_violations"):
        assert key in summary
    assert summary["converged"] is True


# -------------------------------------------------------------- manager
def _tight_policy(**overrides):
    base = dict(
        soft_residency_bytes=512 * 1024,
        hard_residency_bytes=1 << 20,
        tenant_quota_bytes=64 * (1 << 20),
    )
    base.update(overrides)
    return AdmissionPolicy(**base)


def test_manager_runs_one_job_to_completion():
    mgr = JobManager(workers=1, keep_runtimes=True)
    try:
        job = mgr.submit(JobSpec.from_request(SMALL))
        assert mgr.drain(timeout=60.0)
        assert job.state == "finished"
        assert job.violations == []
        assert job.result["state_digest"] == (
            run_job_solo(job.spec).state_digest())
        assert mgr.admission.reserved_bytes == 0
    finally:
        mgr.shutdown(drain=False)


def test_manager_rejects_envelope_over_hard_limit():
    mgr = JobManager(policy=_tight_policy(), workers=1)
    try:
        big = JobSpec.from_request(
            dict(method="pcdm", n_nodes=4, memory_bytes=1 << 20))
        job = mgr.submit(big)
        assert job.state == "rejected"
        assert "hard" in job.reason
        assert mgr.admission.reserved_bytes == 0
    finally:
        mgr.shutdown(drain=False)


def test_manager_queues_under_pressure_then_promotes_fifo():
    # Each envelope is 512 KiB == soft: one runs, the rest queue.
    mgr = JobManager(policy=_tight_policy(), workers=2)
    try:
        spec = JobSpec.from_request(
            dict(SMALL, n_nodes=2, memory_bytes=256 * 1024))
        jobs = [mgr.submit(spec) for _ in range(3)]
        assert jobs[0].state in ("pending", "running", "finished")
        assert mgr.drain(timeout=120.0)
        assert [j.state for j in jobs] == ["finished"] * 3
        assert mgr.admission.pressure()["queued_jobs"] == 0
        assert mgr.admission.reserved_bytes == 0
    finally:
        mgr.shutdown(drain=False)


def test_tenant_quota_blocks_future_admissions_not_running_jobs():
    # Quota below what one spilly job stores: the job itself finishes
    # (with a recorded quota-crossing note), the *next* one is rejected.
    mgr = JobManager(
        policy=_tight_policy(tenant_quota_bytes=48 * 1024), workers=1)
    try:
        spec = JobSpec.from_request(dict(SPILLY, tenant="greedy"))
        first = mgr.submit(spec)
        assert mgr.drain(timeout=120.0)
        assert first.state == "finished"
        assert mgr.admission.tenant_stored_bytes("greedy") >= 48 * 1024
        second = mgr.submit(spec)
        assert second.state == "rejected"
        assert "quota" in second.reason
        # Other tenants are unaffected.
        third = mgr.submit(JobSpec.from_request(dict(SMALL, tenant="ok")))
        assert third.state != "rejected"
        assert mgr.drain(timeout=60.0)
    finally:
        mgr.shutdown(drain=False)


def test_cancel_queued_job_never_runs():
    mgr = JobManager(policy=_tight_policy(), workers=1)
    try:
        spec = JobSpec.from_request(
            dict(SPILLY, n_nodes=2, memory_bytes=256 * 1024))
        first = mgr.submit(spec)
        queued = mgr.submit(spec)
        if queued.state == "queued":  # racing the first job's finish
            assert mgr.cancel(queued.job_id)
        assert mgr.drain(timeout=120.0)
        assert first.state == "finished"
        assert queued.state in ("cancelled", "finished")
        if queued.state == "cancelled":
            assert queued.attempts == 0
        assert mgr.admission.reserved_bytes == 0
    finally:
        mgr.shutdown(drain=False)


def test_lifecycle_events_and_prometheus_rendering():
    bus = EventBus()
    seen = []
    bus.subscribe(kinds=("job",), callback=seen.append)
    mgr = JobManager(workers=1, bus=bus)
    try:
        job = mgr.submit(JobSpec.from_request(dict(SMALL, tenant="acme")))
        assert mgr.drain(timeout=60.0)
        phases = [ev.phase for ev in seen if ev.job_id == job.job_id]
        assert phases[0] == "submitted"
        assert phases[1] == "admitted"
        assert phases[2] == "started"
        assert phases[-1] == "finished"
        assert "boundary" in phases
        assert all(ev.tenant == "acme" for ev in seen)

        text = render_prometheus(mgr.registry)
        assert "# HELP mrts_jobs_total" in text
        assert "# TYPE mrts_jobs_total counter" in text
        assert 'phase="finished"' in text and 'tenant="acme"' in text
        assert "mrts_service_reserved_bytes 0" in text
    finally:
        mgr.shutdown(drain=False)
