"""Shared fixtures for the MRTS test suite.

Factories rather than instances wherever a test may need several runtimes
(crash/restore pairs, determinism comparisons): call the fixture to get a
fresh, independently seeded object.
"""

import random

import pytest

from repro.core import MRTS, MRTSConfig
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing import RuntimeHarness


@pytest.fixture
def rng():
    """A deterministically seeded PRNG; reseed per-test via rng.seed(n)."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def cluster_spec():
    """Factory: small clusters with an explicit memory budget."""

    def make(n_nodes=2, cores=1, memory_bytes=1 << 20, **node_kwargs):
        return ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(cores=cores, memory_bytes=memory_bytes, **node_kwargs),
        )

    return make


@pytest.fixture
def mrts(cluster_spec):
    """Factory: a bare runtime on a small cluster."""

    def make(n_nodes=2, memory_bytes=1 << 20, config=None, **kwargs):
        return MRTS(
            cluster_spec(n_nodes=n_nodes, memory_bytes=memory_bytes),
            config=config or MRTSConfig(),
            **kwargs,
        )

    return make


@pytest.fixture
def harness():
    """Factory: an invariant-checked RuntimeHarness (repro.testing)."""

    def make(**kwargs):
        return RuntimeHarness(**kwargs)

    return make


@pytest.fixture
def spill_dir(tmp_path):
    """A per-test directory for FileBackend spill files."""
    d = tmp_path / "spill"
    d.mkdir()
    return d
