"""Unit and property tests for id allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.util import IdAllocator


def test_single_allocator_is_sequential():
    alloc = IdAllocator()
    assert [alloc.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_peek_does_not_consume():
    alloc = IdAllocator(rank=1, stride=3)
    assert alloc.peek() == 1
    assert alloc.allocate() == 1
    assert alloc.peek() == 4


def test_rank_out_of_range_rejected():
    with pytest.raises(ValueError):
        IdAllocator(rank=3, stride=3)
    with pytest.raises(ValueError):
        IdAllocator(rank=-1, stride=2)
    with pytest.raises(ValueError):
        IdAllocator(rank=0, stride=0)


@given(
    stride=st.integers(min_value=1, max_value=16),
    per_rank=st.integers(min_value=0, max_value=50),
)
def test_striped_allocators_never_collide(stride, per_rank):
    """Ids from different ranks form disjoint sets (the key invariant)."""
    seen = set()
    for rank in range(stride):
        alloc = IdAllocator(rank=rank, stride=stride)
        for _ in range(per_rank):
            value = alloc.allocate()
            assert value not in seen
            assert value % stride == rank
            seen.add(value)


@given(stride=st.integers(min_value=1, max_value=8))
def test_allocation_is_monotonic(stride):
    alloc = IdAllocator(rank=stride - 1, stride=stride)
    values = [alloc.allocate() for _ in range(10)]
    assert values == sorted(values)
    assert len(set(values)) == len(values)
