"""Tests for the 3D extruded-prism PUMG variant (repro.mesh3d).

Prism predicates (volume/size/quality, bisection conservation, the
batch==scalar property), the block decomposition, end-to-end refinement
on the unmodified MRTS (uniform and anisotropic layered sizing), the
2:1 face-balance invariant, morton3 locality keys, and the serve-layer
mesh3d job.
"""

import math
import random

import pytest

from repro.core.packfile import morton3
from repro.mesh3d import (
    Prism,
    bisect_prism,
    initial_prisms,
    prism_quality,
    prism_size,
    prism_volume,
    run_mesh3d,
    sizing3_from_spec,
)
from repro.mesh3d.driver import _block_grid
from repro.mesh3d.prism import (
    pack_prisms,
    prism_size_batch,
    prism_volume_batch,
)
from repro.serve.meshjob import JobSpec, run_job_solo
from repro.testing.invariants import check_mesh3d

UNIT = (0.0, 0.0, 0.0, 1.0, 1.0, 1.0)


def _random_prisms(n, seed=7):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        a = (rng.uniform(0, 1), rng.uniform(0, 1))
        b = (a[0] + rng.uniform(0.05, 1), a[1] + rng.uniform(-0.5, 0.5))
        c = (a[0] + rng.uniform(-0.5, 0.5), a[1] + rng.uniform(0.05, 1))
        z0 = rng.uniform(0, 1)
        out.append(Prism(a, b, c, z0, z0 + rng.uniform(0.05, 1)))
    return out


# -------------------------------------------------------------- predicates
def test_prism_volume_and_size():
    p = Prism((0, 0), (1, 0), (0, 1), 0.0, 2.0)
    assert prism_volume(p) == pytest.approx(0.5 * 2.0)
    # Longest extent: height 2 beats the sqrt(2) hypotenuse.
    assert prism_size(p) == pytest.approx(2.0)


def test_prism_quality_penalizes_anisotropy():
    fat = Prism((0, 0), (1, 0), (0.5, math.sqrt(3) / 2), 0.0, 1.0)
    flat = Prism((0, 0), (1, 0), (0.5, math.sqrt(3) / 2), 0.0, 0.05)
    assert prism_quality(fat) < prism_quality(flat)


def test_initial_prisms_tile_the_box():
    box = (0.0, 0.0, 0.0, 2.0, 3.0, 4.0)
    cells = initial_prisms(box)
    assert len(cells) == 2
    assert sum(prism_volume(c) for c in cells) == pytest.approx(24.0)


def test_bisect_conserves_volume_exactly():
    for p in _random_prisms(50):
        lo, hi = bisect_prism(p)
        assert lo.level == p.level + 1 and hi.level == p.level + 1
        # Exact conservation (not approx): the invariant check relies
        # on bisection introducing no volume drift.
        assert prism_volume(lo) + prism_volume(hi) == pytest.approx(
            prism_volume(p), rel=1e-12
        )


def test_bisect_tall_prism_splits_height():
    p = Prism((0, 0), (0.1, 0), (0, 0.1), 0.0, 1.0)
    lo, hi = bisect_prism(p)
    assert lo.z1 == hi.z0 == pytest.approx(0.5)
    assert lo.a == p.a and hi.a == p.a


def test_bisect_flat_prism_splits_longest_edge():
    p = Prism((0, 0), (1, 0), (0, 0.4), 0.0, 0.1)
    lo, hi = bisect_prism(p)
    assert lo.z0 == hi.z0 == 0.0 and lo.z1 == hi.z1 == 0.1
    assert prism_size(lo) < prism_size(p)


def test_batch_equals_scalar_on_random_prisms():
    prisms = _random_prisms(200)
    tris, z = pack_prisms(prisms)
    vols = prism_volume_batch(tris, z)
    sizes = prism_size_batch(tris, z)
    for k, p in enumerate(prisms):
        assert vols[k] == pytest.approx(prism_volume(p), rel=1e-12)
        assert sizes[k] == pytest.approx(prism_size(p), rel=1e-12)


# ------------------------------------------------------------------ sizing
def test_layered_sizing_grades_in_z():
    sizing = sizing3_from_spec(("layered", 0.01, 0.5))
    assert sizing((0.5, 0.5, 0.0)) == pytest.approx(0.01)
    assert sizing((0.5, 0.5, 1.0)) == pytest.approx(0.5)
    assert 0.01 < sizing((0.5, 0.5, 0.5)) < 0.5


def test_point_source_sizing3_grows_with_distance():
    sizing = sizing3_from_spec(
        ("point_source", (0.0, 0.0, 0.0), 0.05, 0.4)
    )
    assert sizing((0.0, 0.0, 0.0)) == pytest.approx(0.05)
    near, far = sizing((0.1, 0.0, 0.0)), sizing((0.9, 0.9, 0.9))
    assert near < far <= 0.4


def test_unknown_sizing3_spec_rejected():
    with pytest.raises(ValueError):
        sizing3_from_spec(("spherical", 0.1))


# ----------------------------------------------------------- block grid
def test_block_grid_adjacency_and_colors():
    blocks = _block_grid(UNIT, 2, 2, 2)
    assert len(blocks) == 8
    assert sorted(b["color"] for b in blocks) == list(range(8))
    corner = blocks[0]
    assert corner["ijk"] == (0, 0, 0)
    assert sorted(corner["neighbors"]) == [1, 2, 4]
    middle_run = _block_grid(UNIT, 3, 3, 3)
    center = next(b for b in middle_run if b["ijk"] == (1, 1, 1))
    assert len(center["neighbors"]) == 6


def test_morton3_locality_key():
    assert morton3(0, 0, 0) == 0
    assert morton3(1, 0, 0) == 1
    assert morton3(0, 1, 0) == 2
    assert morton3(0, 0, 1) == 4
    assert morton3(3, 3, 3) == 63
    # Z-order: grid neighbors land near each other on the curve.
    assert abs(morton3(2, 3, 1) - morton3(3, 3, 1)) < 8


# ------------------------------------------------------------- end to end
def test_mesh3d_uniform_run_converges():
    res = run_mesh3d(("uniform", 0.3), nx=2, ny=2, nz=2)
    assert res.total_volume == pytest.approx(1.0, rel=1e-9)
    assert res.n_cells > 16
    assert math.isfinite(res.worst_quality)
    assert res.extras["phases"] >= 2
    assert check_mesh3d(res.extras["patch_objects"], bounds=UNIT) == []


def test_mesh3d_layered_run_is_anisotropic():
    res = run_mesh3d(("layered", 0.08, 0.6), nx=2, ny=2, nz=2)
    assert res.total_volume == pytest.approx(1.0, rel=1e-9)
    # The bottom layer refines far harder than the top: the per-patch
    # cell skew is the anisotropic workload the scheduler must absorb.
    assert res.extras["cells_per_patch_max"] >= 4 * res.extras[
        "cells_per_patch_min"
    ]
    assert check_mesh3d(res.extras["patch_objects"], bounds=UNIT) == []


def test_mesh3d_face_balance_holds():
    res = run_mesh3d(
        ("point_source", (0.0, 0.0, 0.0), 0.08, 0.6), nx=2, ny=2, nz=2
    )
    patches = res.extras["patch_objects"]
    from repro.mesh3d.objects import BALANCE_RATIO

    by_id = {p.patch_id: p for p in patches}
    checked = 0
    for p in patches:
        for rid in p.neighbor_ids:
            mine = p.face_min_size(rid)
            theirs = by_id[rid].face_min_size(p.patch_id)
            if math.isinf(mine) or math.isinf(theirs):
                continue
            assert mine <= BALANCE_RATIO * theirs + 1e-9
            checked += 1
    assert checked > 0


def test_check_mesh3d_flags_imbalance():
    res = run_mesh3d(("uniform", 0.4), nx=2, ny=1, nz=1)
    patches = res.extras["patch_objects"]
    # Over-refine one patch behind the invariant checker's back.
    victim = patches[0]
    for _ in range(5):
        victim.cells = [
            half for c in victim.cells for half in bisect_prism(c)
        ]
    problems = check_mesh3d(patches)
    assert any("balance violated" in p for p in problems)


# ------------------------------------------------------------ serve layer
def test_serve_mesh3d_job_runs_and_validates():
    spec = JobSpec.from_request(
        dict(method="mesh3d", h=0.25, nx=2, ny=2, nz=2,
             memory_bytes=256 * 1024)
    )
    job = run_job_solo(spec)
    assert job.violations == []
    assert job.result_summary()["n_points"] > 16


def test_serve_mesh3d_job_is_deterministic():
    spec = JobSpec.from_request(
        dict(method="mesh3d", h=0.25, nx=2, ny=2, nz=1,
             memory_bytes=256 * 1024)
    )
    a, b = run_job_solo(spec), run_job_solo(spec)
    assert a.state_digest() == b.state_digest()


def test_jobspec_mesh3d_round_trips():
    spec = JobSpec.from_request(
        dict(method="mesh3d", h=0.3, nx=2, ny=2, nz=3,
             memory_bytes=256 * 1024)
    )
    assert spec.nz == 3
    assert JobSpec.from_request(spec.to_dict()) == spec
