"""Property test for admission control (Hypothesis).

Random decide/promote/charge/release sequences against the two
invariants the controller's docstring promises:

1. the sum of reservations never exceeds the hard residency limit —
   admitted envelopes are the server's worst-case RAM exposure, so this
   bound is what keeps N tenants from OOMing the box;
2. a tenant whose spilled-byte ledger is at or over quota is never
   admitted (nor promoted) until the ledger is below quota again.

The sequences deliberately include releases and quota charges between
decisions, so the invariants are checked across pressure falling as
well as rising, and with the queue cycling jobs in FIFO order.
"""

from hypothesis import given, settings, strategies as st

from repro.serve.admission import AdmissionController, AdmissionPolicy

KIB = 1024

_policy = st.builds(
    AdmissionPolicy,
    soft_residency_bytes=st.integers(1 * KIB, 64 * KIB),
    hard_residency_bytes=st.integers(64 * KIB, 256 * KIB),
    tenant_quota_bytes=st.integers(1 * KIB, 128 * KIB),
    max_queued=st.integers(0, 8),
)

_op = st.one_of(
    st.tuples(st.just("decide"), st.integers(0, 3),
              st.integers(0, 300 * KIB)),
    st.tuples(st.just("promote"), st.integers(0, 3),
              st.integers(0, 300 * KIB)),
    st.tuples(st.just("charge"), st.integers(0, 3),
              st.integers(0, 64 * KIB)),
    st.tuples(st.just("release"), st.integers(0, 40)),
)


@given(policy=_policy, ops=st.lists(_op, max_size=60))
@settings(max_examples=120, deadline=None)
def test_admission_invariants_hold_under_random_sequences(policy, ops):
    ctrl = AdmissionController(policy)
    hard = policy.hard_residency_bytes
    quota = policy.tenant_quota_bytes
    live: list[str] = []      # job ids holding a reservation
    next_id = 0

    def check(context: str) -> None:
        assert ctrl.reserved_bytes <= hard, (
            f"{context}: reservations {ctrl.reserved_bytes} B exceed the "
            f"hard limit {hard} B")

    for op in ops:
        if op[0] == "decide":
            _, tenant_idx, est = op
            tenant = f"t{tenant_idx}"
            stored_before = ctrl.tenant_stored_bytes(tenant)
            next_id += 1
            decision = ctrl.decide(f"j{next_id}", tenant, est)
            if decision.admitted:
                assert stored_before < quota, (
                    "tenant at quota was admitted")
                live.append(f"j{next_id}")
            elif decision.verdict == "queue":
                # Queueing is only for pressure, never for quota breach.
                assert stored_before < quota
                ctrl.drop_queued()  # keep the queue from pinning state
        elif op[0] == "promote":
            _, tenant_idx, est = op
            tenant = f"t{tenant_idx}"
            stored_before = ctrl.tenant_stored_bytes(tenant)
            next_id += 1
            if ctrl.try_promote(f"j{next_id}", tenant, est):
                assert stored_before < quota, (
                    "tenant at quota was promoted")
                live.append(f"j{next_id}")
        elif op[0] == "charge":
            _, tenant_idx, delta = op
            within = ctrl.charge_stored(f"t{tenant_idx}", delta)
            assert within == (
                ctrl.tenant_stored_bytes(f"t{tenant_idx}") < quota)
        else:  # release
            if live:
                job_id = live.pop(op[1] % len(live))
                ctrl.release(job_id)
        check(f"after {op!r}")

    # Releasing everything empties the ledger completely.
    for job_id in live:
        ctrl.release(job_id)
    assert ctrl.reserved_bytes == 0
    assert ctrl.observed_bytes == 0


@given(est=st.integers(0, 512 * KIB), others=st.lists(
    st.integers(1, 64 * KIB), max_size=6))
@settings(max_examples=60, deadline=None)
def test_single_job_envelope_respects_hard_limit(est, others):
    """Even the elephant-alone admission path stays under hard."""
    policy = AdmissionPolicy(
        soft_residency_bytes=32 * KIB,
        hard_residency_bytes=128 * KIB,
        tenant_quota_bytes=1 << 20,
    )
    ctrl = AdmissionController(policy)
    for i, size in enumerate(others):
        ctrl.decide(f"pre{i}", "crowd", size)
        assert ctrl.reserved_bytes <= policy.hard_residency_bytes
    decision = ctrl.decide("big", "elephant", est)
    assert ctrl.reserved_bytes <= policy.hard_residency_bytes
    if est > policy.hard_residency_bytes:
        assert decision.verdict == "reject"
