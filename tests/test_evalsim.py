"""Tests for the paper-scale evaluation harness (cost models + modeled apps)."""

import pytest

from repro.evalsim import (
    Experiment,
    fits_in_core,
    method_model,
    run_nupdr_model,
    run_pcdm_model,
    run_updr_model,
)
from repro.sim.cluster import stems_spec

M = 1_000_000


# ------------------------------------------------------------------ models
def test_method_model_lookup():
    assert method_model("updr").name == "updr"
    assert method_model("nupdr").rate > method_model("updr").rate
    with pytest.raises(ValueError):
        method_model("octree")


def test_compute_seconds_linear():
    model = method_model("updr")
    assert model.compute_seconds(2 * model.rate) == pytest.approx(2.0)


def test_subdomain_bytes_anchored_to_paper():
    """238M elements must need ~64 GB (the paper's PCDM memory anchor)."""
    model = method_model("pcdm")
    total = model.subdomain_bytes(238 * M)
    assert 55e9 < total < 75e9


def test_alloc_amortization_nupdr():
    model = method_model("nupdr")
    at2 = model.mrts_alloc_seconds(1 * M, 2)
    at8 = model.mrts_alloc_seconds(1 * M, 8)
    assert at2 > at8  # the 2-PE allocator effect shrinks with PEs


def test_fits_in_core():
    stems = stems_spec(4)  # 32 GB aggregate
    model = method_model("updr")
    assert fits_in_core(24 * M, stems, model)
    assert not fits_in_core(500 * M, stems, model)


# ---------------------------------------------------------------- app runs
def test_updr_model_incore_overhead_in_paper_band():
    """Figure 5's claim: MRTS overhead small (we accept <= 20%) in-core."""
    stems = stems_spec(4)
    base = run_updr_model(24 * M, stems, mrts=False)
    ours = run_updr_model(24 * M, stems, mrts=True)
    overhead = ours.time / base.time - 1.0
    assert 0.0 < overhead < 0.20


def test_nupdr_model_two_pe_allocator_effect():
    """Figure 6's 2-PE anomaly: much larger overhead than at 8 PEs."""
    from repro.sim.cluster import ClusterSpec
    from repro.sim.node import NodeSpec

    node = stems_spec().node
    two_pe = ClusterSpec(1, NodeSpec(
        cores=2, memory_bytes=node.memory_bytes,
        disk_latency=node.disk_latency, disk_bandwidth=node.disk_bandwidth,
        core_speed=node.core_speed,
    ))
    eight_pe = stems_spec(2)
    def overhead(cluster, n):
        base = run_nupdr_model(n, cluster, mrts=False)
        ours = run_nupdr_model(n, cluster, mrts=True)
        return ours.time / base.time - 1.0
    over2 = overhead(two_pe, 8 * M)
    over8 = overhead(eight_pe, 8 * M)
    assert over2 > over8
    assert over2 > 0.25  # the paper reports up to 41%
    assert over8 < 0.20


def test_ooc_run_spills_and_overlaps():
    """Large OUPDR: must spill and show meaningful overlap (Table IV)."""
    result = run_updr_model(500 * M, stems_spec(4), mrts=True)
    assert result.stats.objects_stored > 0
    breakdown = result.breakdown()
    assert breakdown["disk_pct"] > 20.0
    assert breakdown["overlap_pct"] > 25.0


def test_speed_roughly_sustained_as_size_grows():
    """Tables I-III: Speed stays roughly constant deep out-of-core."""
    stems = stems_spec(4)
    s1 = run_updr_model(500 * M, stems, mrts=True).speed
    s2 = run_updr_model(1000 * M, stems, mrts=True).speed
    assert s2 > 0.6 * s1  # no degradation worse than ~1.7x


def test_pcdm_model_async_messages_flow():
    result = run_pcdm_model(30 * M, stems_spec(4), mrts=True)
    assert result.stats.messages_sent > 0
    assert result.time > 0


def test_baseline_never_spills():
    result = run_updr_model(500 * M, stems_spec(4), mrts=False)
    assert result.stats.objects_stored == 0


def test_model_run_deterministic():
    a = run_nupdr_model(16 * M, stems_spec(1), mrts=True)
    b = run_nupdr_model(16 * M, stems_spec(1), mrts=True)
    assert a.time == b.time
    assert a.stats.messages_sent == b.stats.messages_sent


# ---------------------------------------------------------------- reporting
def test_experiment_render_and_column():
    exp = Experiment("x", "title", ["a", "b"], paper_claim="claim")
    exp.add(1, 2)
    exp.add(3, 4)
    out = exp.render()
    assert "x" in out and "claim" in out
    assert exp.column("b") == [2, 4]
