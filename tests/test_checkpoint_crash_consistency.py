"""Crash-consistency tests: checkpoint/restore under injected storage faults.

The paper claims fault tolerance falls out of the out-of-core subsystem
("check and restore functionality ... can be implemented with little
effort").  These tests hold that claim to its operational meaning: a run
that crashes mid-flight must be resumable from its last checkpoint and
converge to the *same final state* as a run that never crashed.

StormActor cascades are delivery-order independent by construction (the
forwarding PRNG is keyed on cascade-tree tokens, not arrival order), so
"same final state" is exact equality, not a statistical claim.
"""

import pytest

from repro.core import MRTSConfig, MemoryBackend, MobileObject
from repro.core.checkpoint import Checkpoint, CheckpointPolicy, checkpoint, restore
from repro.testing import (
    FaultPlan,
    FaultyBackend,
    RuntimeHarness,
    StorageFault,
    StormActor,
    WorkloadSpec,
    run_storm,
)
from repro.util.errors import SerializationError


SPEC = WorkloadSpec(
    n_actors=8, payload_bytes=2048, initial_pulses=2, hops=4, fanout=2,
    grow_every=3, grow_bytes=512, seed=7,
)


def final_state(runtime, pointers):
    """oid -> (hits, forwarded, payload length) for every actor."""
    out = {}
    for ptr in pointers:
        obj = runtime.get_object(ptr)
        out[ptr.oid] = (obj.hits, obj.forwarded, len(obj.payload))
    return out


def phase2(runtime, pointers_by_oid, oids):
    """Post a second wave of pulses to the three lowest-oid actors."""
    for k, oid in enumerate(sorted(oids)[:3]):
        runtime.post(pointers_by_oid[oid], "pulse", 3, 2, f"q{k}")
    runtime.run()


# ------------------------------------------------------------- equivalence
def test_restore_equals_uninterrupted_run(harness):
    # Reference: phase 1 + phase 2 with no interruption.
    ref = harness(n_nodes=2, memory_bytes=64 * 1024)
    ref_actors = ref.run_storm(SPEC)
    oids = [p.oid for p in ref_actors]
    phase2(ref.runtime, {p.oid: p for p in ref_actors}, oids)
    assert ref.check() == []
    want = final_state(ref.runtime, ref_actors)

    # Checkpointed: phase 1, snapshot, "crash", restore elsewhere, phase 2.
    first = harness(n_nodes=2, memory_bytes=64 * 1024)
    actors = first.run_storm(SPEC)
    snap = checkpoint(first.runtime)
    del first  # the crash

    second = harness(n_nodes=2, memory_bytes=64 * 1024)
    pointers = restore(snap, second.runtime)
    assert set(pointers) == set(oids)
    phase2(second.runtime, pointers, oids)
    assert second.check() == []
    got = final_state(second.runtime, [pointers[oid] for oid in oids])
    assert got == want


def test_checkpoint_captures_pending_messages(harness):
    """Messages posted but not yet run survive the snapshot round-trip."""
    a = harness(n_nodes=2, memory_bytes=64 * 1024)
    actors = [
        a.runtime.create_object(StormActor, 1024, 3, 4, 128, node=i % 2)
        for i in range(4)
    ]
    for ptr in actors:
        a.runtime.post(ptr, "meet", actors)
    a.runtime.post(actors[0], "pulse", 2, 2, "p0")

    snap = checkpoint(a.runtime)
    assert snap.pending_messages == len(actors) + 1  # 4 meets + 1 pulse
    # Bytes round-trip preserves the snapshot verbatim.
    clone = Checkpoint.from_bytes(snap.to_bytes())
    assert clone.n_objects == snap.n_objects == 4
    assert clone.pending_messages == snap.pending_messages

    # Both the original and a restored runtime run the pending work to the
    # same final state.
    a.run_and_check()
    want = final_state(a.runtime, actors)

    b = harness(n_nodes=2, memory_bytes=64 * 1024)
    pointers = restore(clone, b.runtime)
    b.run_and_check()
    got = final_state(b.runtime, list(pointers.values()))
    assert got == want


# -------------------------------------------------------------- crash paths
def test_crash_on_spill_recovers_from_checkpoint(harness):
    """A fail-stopped disk kills the run; the checkpoint resumes it.

    Memory is sized so phase 1 (object creation + introductions) fits in
    core, then the pulse wave's payload growth forces spills — which the
    fault plan kills.  Recovery restores the pre-crash snapshot on a
    healthy harness and re-runs the wave.
    """
    tight = 24 * 1024  # 8 actors x 2 KiB leaves little headroom for growth
    wave = dict(pointers=None, oids=None)

    def run_wave(h, pointers_by_oid, oids):
        for k, oid in enumerate(sorted(oids)[:2]):
            h.runtime.post(pointers_by_oid[oid], "pulse", 5, 2, f"w{k}")
        h.runtime.run()

    # Reference: healthy end-to-end run.
    ref = harness(n_nodes=2, memory_bytes=tight)
    ref_actors = run_storm(ref.runtime, WorkloadSpec(
        n_actors=8, payload_bytes=2048, initial_pulses=0, seed=11,
        grow_every=2, grow_bytes=1024,
    ))
    oids = [p.oid for p in ref_actors]
    run_wave(ref, {p.oid: p for p in ref_actors}, oids)
    assert ref.check() == []
    want = final_state(ref.runtime, ref_actors)

    # Crashing run: same shape, but the disk dies on its 3rd store.
    crashing = harness(
        n_nodes=2, memory_bytes=tight,
        fault_plan=FaultPlan(fail_store_at=3, fail_stop=True),
    )
    actors = run_storm(crashing.runtime, WorkloadSpec(
        n_actors=8, payload_bytes=2048, initial_pulses=0, seed=11,
        grow_every=2, grow_bytes=1024,
    ))
    snap = checkpoint(crashing.runtime)
    with pytest.raises(StorageFault):
        run_wave(crashing, {p.oid: p for p in actors}, oids)
    assert any(b.faults_injected for b in crashing.fault_backends.values())

    # Recovery: healthy harness, restored state, replayed wave.
    recovered = harness(n_nodes=2, memory_bytes=tight)
    pointers = restore(snap, recovered.runtime)
    run_wave(recovered, pointers, oids)
    assert recovered.check() == []
    got = final_state(recovered.runtime, [pointers[oid] for oid in oids])
    assert got == want


def test_torn_write_leaves_corrupt_bytes():
    """A torn store must be treated as failed even though a load 'works'."""

    class Payload(MobileObject):
        def __init__(self, ptr):
            super().__init__(ptr)
            self.blob = bytes(range(256)) * 16

    from repro.core.mobile import MobilePointer

    backend = FaultyBackend(
        MemoryBackend(),
        FaultPlan(fail_store_at=1, torn_write_fraction=0.5),
    )
    obj = Payload(MobilePointer(oid=1))
    packed = obj.pack()
    with pytest.raises(StorageFault):
        backend.store(1, packed)
    # The dangerous part: storage *contains* the object, but truncated.
    assert backend.contains(1)
    torn = backend.load(1)
    assert len(torn) < len(packed)
    with pytest.raises(SerializationError):
        obj.unpack(torn)


# ------------------------------------------------------------------- policy
def test_checkpoint_policy_triggers_on_interval(harness):
    h = harness(n_nodes=2, memory_bytes=64 * 1024)
    policy = CheckpointPolicy(h.runtime, interval=5)
    assert policy.take_if_due() is None  # nothing retired yet

    h.run_storm(WorkloadSpec(n_actors=6, initial_pulses=2, hops=3, seed=2))
    snap = policy.take_if_due()
    assert snap is not None and snap.n_objects == 6
    assert policy.latest is snap
    assert policy.take_if_due() is None  # no new work since
