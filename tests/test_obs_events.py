"""Tests for the observability event bus and subscriptions."""

import pytest

from repro.core import MobileObject, MRTS, handler
from repro.obs import EventBus, HandlerSpan
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Blob(MobileObject):
    def __init__(self, pointer, size=40_000):
        super().__init__(pointer)
        self.data = bytes(size)
        self.hits = 0

    @handler
    def hit(self, ctx, peer=None):
        self.hits += 1
        if peer is not None:
            ctx.post(peer, "hit")


def build(memory=1 << 22, n_nodes=2):
    cluster = ClusterSpec(
        n_nodes=n_nodes, node=NodeSpec(cores=1, memory_bytes=memory)
    )
    return MRTS(cluster)


def test_bus_inactive_by_default():
    rt = build()
    assert rt.bus.active is False
    a = rt.create_object(Blob, node=0)
    rt.post(a, "hit")
    rt.run()  # no subscriber: nothing blows up, nothing is recorded
    assert rt.bus.active is False


def test_subscribe_activates_and_collects():
    rt = build()
    sub = rt.bus.subscribe()
    assert rt.bus.active is True
    a = rt.create_object(Blob, node=0)
    b = rt.create_object(Blob, node=1)
    rt.post(a, "hit", peer=b)
    rt.run()
    kinds = {e.kind for e in sub.events}
    assert "handler" in kinds
    assert "send" in kinds
    assert "queue" in kinds


def test_unsubscribe_deactivates_and_is_idempotent():
    rt = build()
    sub = rt.bus.subscribe()
    sub.close()
    assert rt.bus.active is False
    assert sub.attached is False
    sub.close()  # second close is a no-op
    a = rt.create_object(Blob, node=0)
    rt.post(a, "hit")
    rt.run()
    assert len(sub.events) == 0


def test_ring_buffer_bounds_and_counts_drops():
    rt = build()
    everything = rt.bus.subscribe()
    sub = rt.bus.subscribe(capacity=5)
    a = rt.create_object(Blob, node=0)
    b = rt.create_object(Blob, node=1)
    for _ in range(4):
        rt.post(a, "hit", peer=b)
    rt.run()
    assert len(sub.events) == 5
    assert sub.dropped == len(everything.events) - 5
    assert sub.dropped > 0
    # The ring sheds the oldest: what remains is the stream's tail.
    assert list(sub.events) == list(everything.events)[-5:]


def test_kind_filter():
    rt = build()
    sub = rt.bus.subscribe(kinds={"handler"})
    a = rt.create_object(Blob, node=0)
    b = rt.create_object(Blob, node=1)
    rt.post(a, "hit", peer=b)
    rt.run()
    assert sub.events
    assert all(e.kind == "handler" for e in sub.events)
    assert all(isinstance(e, HandlerSpan) for e in sub.events)


def test_callback_mode_bypasses_buffer():
    rt = build()
    seen = []
    sub = rt.bus.subscribe(callback=seen.append)
    a = rt.create_object(Blob, node=0)
    rt.post(a, "hit")
    rt.run()
    assert seen
    assert len(sub.events) == 0


def test_subscription_context_manager_detaches_on_exception():
    rt = build()
    with pytest.raises(RuntimeError):
        with rt.bus.subscribe() as sub:
            raise RuntimeError("boom")
    assert rt.bus.active is False
    assert sub.attached is False


def test_invalid_capacity_rejected():
    bus = EventBus()
    with pytest.raises(ValueError):
        bus.subscribe(capacity=0)


def test_shared_bus_across_runtimes():
    """One bus can observe several runtime incarnations (recovery case)."""
    bus = EventBus()
    sub = bus.subscribe()
    for _ in range(2):
        rt = MRTS(
            ClusterSpec(n_nodes=1, node=NodeSpec(cores=1,
                                                 memory_bytes=1 << 22)),
            bus=bus,
        )
        a = rt.create_object(Blob, node=0)
        rt.post(a, "hit")
        rt.run()
    handlers = [e for e in sub.events if e.kind == "handler"]
    assert len(handlers) == 2


def test_events_are_frozen():
    rt = build()
    sub = rt.bus.subscribe(kinds={"handler"})
    a = rt.create_object(Blob, node=0)
    rt.post(a, "hit")
    rt.run()
    event = sub.events[0]
    with pytest.raises(AttributeError):
        event.node = 99
