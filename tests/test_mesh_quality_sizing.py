"""Tests for quality metrics and sizing functions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mesh import (
    MeshQuality,
    linear_gradient_sizing,
    point_source_sizing,
    triangle_angles,
    triangle_area,
    triangle_quality,
    uniform_sizing,
)

# ----------------------------------------------------------------- quality
EQUILATERAL = ((0.0, 0.0), (1.0, 0.0), (0.5, math.sqrt(3) / 2))


def test_equilateral_quality():
    assert triangle_quality(*EQUILATERAL) == pytest.approx(1 / math.sqrt(3))


def test_right_triangle_quality():
    # Circumradius of right triangle = half hypotenuse; shortest edge = 1.
    q = triangle_quality((0, 0), (1, 0), (0, 1))
    assert q == pytest.approx(math.sqrt(2) / 2)


def test_degenerate_quality_is_inf():
    assert triangle_quality((0, 0), (0, 0), (1, 1)) == math.inf


def test_angles_sum_to_pi():
    angles = triangle_angles(*EQUILATERAL)
    assert sum(angles) == pytest.approx(math.pi)
    for a in angles:
        assert a == pytest.approx(math.pi / 3)


@given(
    st.tuples(
        st.floats(-100, 100), st.floats(-100, 100),
    ),
    st.tuples(
        st.floats(-100, 100), st.floats(-100, 100),
    ),
    st.tuples(
        st.floats(-100, 100), st.floats(-100, 100),
    ),
)
def test_angles_sum_property(a, b, c):
    area = triangle_area(a, b, c)
    if area < 1e-6:
        return
    assert sum(triangle_angles(a, b, c)) == pytest.approx(math.pi, abs=1e-6)


def test_triangle_area():
    assert triangle_area((0, 0), (2, 0), (0, 2)) == pytest.approx(2.0)
    assert triangle_area((0, 0), (1, 1), (2, 2)) == 0.0


def test_mesh_quality_summary():
    tris = [(0, 1, 2), (1, 3, 2)]
    pts = {0: (0, 0), 1: (1, 0), 2: (0, 1), 3: (1, 1)}

    def coords(t):
        return tuple(pts[v] for v in t)

    quality = MeshQuality.of(tris, coords)
    assert quality.n_triangles == 2
    assert quality.total_area == pytest.approx(1.0)
    assert quality.min_angle_deg == pytest.approx(45.0)
    assert quality.max_angle_deg == pytest.approx(90.0)


def test_mesh_quality_empty_rejected():
    with pytest.raises(ValueError):
        MeshQuality.of([], lambda t: t)


# ------------------------------------------------------------------ sizing
def test_uniform_sizing():
    size = uniform_sizing(0.5)
    assert size((0, 0)) == 0.5
    assert size((100, -3)) == 0.5
    with pytest.raises(ValueError):
        uniform_sizing(0.0)


def test_point_source_sizing_values():
    size = point_source_sizing([((0.0, 0.0), 0.01)], background=1.0, gradation=0.5)
    assert size((0.0, 0.0)) == pytest.approx(0.01)
    assert size((1.0, 0.0)) == pytest.approx(0.51)
    assert size((100.0, 0.0)) == 1.0  # capped at background


def test_point_source_multiple_sources_take_min():
    size = point_source_sizing(
        [((0.0, 0.0), 0.1), ((1.0, 0.0), 0.01)], background=1.0
    )
    assert size((1.0, 0.0)) == pytest.approx(0.01)


def test_point_source_validation():
    with pytest.raises(ValueError):
        point_source_sizing([((0, 0), -1.0)], background=1.0)
    with pytest.raises(ValueError):
        point_source_sizing([], background=0.0)


def test_linear_gradient_values():
    size = linear_gradient_sizing(0.1, 0.5, axis=0, lo=0.0, hi=1.0)
    assert size((0.0, 0.0)) == pytest.approx(0.1)
    assert size((1.0, 0.0)) == pytest.approx(0.5)
    assert size((0.5, 0.0)) == pytest.approx(0.3)
    assert size((-5.0, 0.0)) == pytest.approx(0.1)   # clamped
    assert size((5.0, 0.0)) == pytest.approx(0.5)    # clamped


def test_linear_gradient_validation():
    with pytest.raises(ValueError):
        linear_gradient_sizing(0.0, 1.0)
    with pytest.raises(ValueError):
        linear_gradient_sizing(0.1, 0.5, lo=1.0, hi=1.0)


@given(
    x=st.floats(-10, 10),
    y=st.floats(-10, 10),
)
def test_point_source_never_exceeds_background(x, y):
    size = point_source_sizing([((0.0, 0.0), 0.05)], background=0.7)
    assert 0.0 < size((x, y)) <= 0.7
