"""Tests for Ruppert refinement: quality bounds, sizing, conformity."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import pipe_cross_section, plate_with_holes, unit_square
from repro.mesh import (
    MeshQuality,
    find_bad_triangles,
    refine,
    triangulate_pslg,
    uniform_sizing,
    point_source_sizing,
    linear_gradient_sizing,
)
from repro.mesh.quality import triangle_area


def _refined_square(h=0.2, **kw):
    tri = triangulate_pslg(unit_square())
    result = refine(tri, sizing=uniform_sizing(h), **kw)
    return tri, result


def test_refine_square_reaches_quality():
    tri, result = _refined_square(h=0.15)
    assert result.steiner_points > 0
    assert find_bad_triangles(tri, sizing=uniform_sizing(0.15)) == []
    quality = MeshQuality.of(tri.triangles(), tri.coords)
    # B = sqrt(2) guarantees min angle >= arcsin(1/(2B)) ~ 20.7 degrees.
    assert quality.min_angle_deg > 20.0


def test_refine_preserves_area():
    tri, _ = _refined_square(h=0.2)
    area = sum(triangle_area(*tri.coords(t)) for t in tri.triangles())
    assert area == pytest.approx(1.0, rel=1e-9)


def test_refine_is_conforming_delaunay():
    tri, _ = _refined_square(h=0.2)
    assert tri.check_delaunay() == []


def test_smaller_h_gives_more_triangles():
    coarse, _ = _refined_square(h=0.3)
    fine, _ = _refined_square(h=0.1)
    assert fine.n_triangles > coarse.n_triangles


def test_refine_pipe_cross_section():
    """The Table VII geometry meshes cleanly with a hole."""
    tri = triangulate_pslg(pipe_cross_section(n=24))
    refine(tri, sizing=uniform_sizing(0.12))
    assert tri.check_delaunay() == []
    quality = MeshQuality.of(tri.triangles(), tri.coords)
    assert quality.min_angle_deg > 15.0  # boundary angles cap at polygon facets
    full = math.pi * (1.0**2 - 0.45**2)
    assert quality.total_area == pytest.approx(full, rel=0.05)


def test_refine_plate_with_holes():
    tri = triangulate_pslg(plate_with_holes(2))
    refine(tri, sizing=uniform_sizing(0.15))
    assert tri.check_delaunay() == []


def test_graded_sizing_concentrates_elements():
    """Point-source sizing must put far more triangles near the source."""
    tri = triangulate_pslg(unit_square())
    sizing = point_source_sizing(
        [((0.0, 0.0), 0.02)], background=0.3, gradation=0.2
    )
    refine(tri, sizing=sizing)
    near = far = 0
    for t in tri.triangles():
        a, b, c = tri.coords(t)
        cx = (a[0] + b[0] + c[0]) / 3
        cy = (a[1] + b[1] + c[1]) / 3
        if cx * cx + cy * cy < 0.25**2:
            near += 1
        elif cx * cx + cy * cy > 0.75**2:
            far += 1
    # Compare triangle *densities*: the near quarter-disk is ~11x smaller
    # in area than the far region, so equal densities would mean near ~ far/11.
    near_area = 3.14159 * 0.25**2 / 4.0
    far_area = 1.0 - 3.14159 * 0.75**2 / 4.0
    assert near / near_area > 5 * (max(far, 1) / far_area)


def test_linear_gradient_sizing():
    tri = triangulate_pslg(unit_square())
    refine(tri, sizing=linear_gradient_sizing(0.04, 0.4, axis=0))
    left = sum(
        1
        for t in tri.triangles()
        if (sum(tri.coords(t)[k][0] for k in range(3)) / 3) < 0.5
    )
    total = tri.n_triangles
    assert left > 0.6 * total  # most triangles in the fine half


def test_refine_quality_only_no_sizing():
    tri = triangulate_pslg(unit_square())
    result = refine(tri)  # only the B bound; square needs nothing
    assert result.steiner_points == 0
    assert tri.n_triangles == 2


def test_quality_bound_below_one_rejected():
    tri = triangulate_pslg(unit_square())
    with pytest.raises(ValueError):
        refine(tri, quality_bound=0.5)


def test_max_steiner_cap_enforced():
    tri = triangulate_pslg(unit_square())
    with pytest.raises(RuntimeError, match="exceeded"):
        refine(tri, sizing=uniform_sizing(0.01), max_steiner=10)


def test_min_length_floor_stops_refinement():
    tri = triangulate_pslg(unit_square())
    result = refine(tri, sizing=uniform_sizing(0.05), min_length=0.5)
    # Floor far above target size: essentially nothing happens.
    assert result.steiner_points <= 4


def test_boundary_stays_conforming():
    """All four unit-square sides must still be covered by constrained edges."""
    tri, _ = _refined_square(h=0.1)
    for u, v in tri.constrained:
        pu, pv = tri.vertex(u), tri.vertex(v)
        on_boundary = (
            pu[0] == pv[0] == 0.0
            or pu[0] == pv[0] == 1.0
            or pu[1] == pv[1] == 0.0
            or pu[1] == pv[1] == 1.0
        )
        assert on_boundary, f"constrained edge {pu}-{pv} strayed off the boundary"


def test_result_counters_consistent():
    tri, result = _refined_square(h=0.12)
    assert result.steiner_points == result.segment_splits + result.circumcenters
    assert len(result.touched) == result.steiner_points


@settings(max_examples=10, deadline=None)
@given(h=st.floats(min_value=0.08, max_value=0.5))
def test_refinement_terminates_and_validates(h):
    """Property: any uniform size in range terminates with a valid mesh."""
    tri = triangulate_pslg(unit_square())
    refine(tri, sizing=uniform_sizing(h))
    assert tri.check_delaunay() == []
    assert find_bad_triangles(tri, sizing=uniform_sizing(h)) == []
