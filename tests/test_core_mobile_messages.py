"""Tests for mobile objects, pointers, serialization, and messages."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Message,
    MessageQueue,
    MobileObject,
    MobilePointer,
    MulticastMessage,
    PickleSerializer,
)
from repro.util.errors import SerializationError


class Payload(MobileObject):
    def __init__(self, pointer, items=None):
        super().__init__(pointer)
        self.items = items or []


def _ptr(oid=1):
    return MobilePointer(oid=oid)


# ------------------------------------------------------------ MobilePointer
def test_pointer_equality_by_oid():
    assert MobilePointer(1) == MobilePointer(1, last_known_node=5)
    assert MobilePointer(1) != MobilePointer(2)
    assert len({MobilePointer(1), MobilePointer(1)}) == 1


# ------------------------------------------------------------- MobileObject
def test_object_pack_unpack_roundtrip():
    obj = Payload(_ptr(), items=[1, "two", (3.0,)])
    data = obj.pack()
    clone = Payload(_ptr())
    clone.unpack(data)
    assert clone.items == [1, "two", (3.0,)]


def test_state_excludes_runtime_fields():
    obj = Payload(_ptr(), items=[1])
    state = obj.get_state()
    assert "pointer" not in state
    assert "_size_cache" not in state
    assert state["items"] == [1]


def test_nbytes_cached_until_dirty():
    obj = Payload(_ptr(), items=[0] * 10)
    first = obj.nbytes()
    obj.items.extend(range(1000))
    assert obj.nbytes() == first  # stale cache
    obj.mark_dirty()
    assert obj.nbytes() > first


def test_serializer_error_wrapped():
    class Evil:
        def __reduce__(self):
            raise RuntimeError("nope")

    with pytest.raises(SerializationError):
        PickleSerializer().pack(Evil())
    with pytest.raises(SerializationError):
        PickleSerializer().unpack(b"garbage")


@given(
    st.lists(
        st.one_of(st.integers(), st.text(max_size=20), st.floats(allow_nan=False)),
        max_size=30,
    )
)
def test_pack_unpack_property(items):
    """Property: any plain payload round-trips exactly."""
    obj = Payload(_ptr(), items=items)
    clone = Payload(_ptr(2))
    clone.unpack(obj.pack())
    assert clone.items == items


# ------------------------------------------------------------------ Message
def test_message_nbytes_grows_with_payload():
    small = Message(_ptr(), "h", args=(1,))
    big = Message(_ptr(), "h", args=(list(range(1000)),))
    assert big.nbytes() > small.nbytes() > 0


def test_message_seq_monotonic():
    a = Message(_ptr(), "h")
    b = Message(_ptr(), "h")
    assert b.seq > a.seq


def test_multicast_validation():
    with pytest.raises(ValueError):
        MulticastMessage([], "h")
    with pytest.raises(ValueError):
        MulticastMessage([_ptr()], "h", deliver_count=2)
    with pytest.raises(ValueError):
        MulticastMessage([_ptr(), _ptr(2)], "h", deliver_count=0)
    msg = MulticastMessage([_ptr(), _ptr(2)], "h", deliver_count=1)
    assert msg.nbytes() > 0


# ------------------------------------------------------------- MessageQueue
def test_queue_fifo_order():
    q = MessageQueue()
    msgs = [Message(_ptr(), f"h{i}") for i in range(3)]
    for m in msgs:
        q.push(m)
    assert len(q) == 3
    assert q.peek() is msgs[0]
    assert [q.pop() for _ in range(3)] == msgs
    assert not q


def test_queue_pop_empty_raises():
    with pytest.raises(IndexError):
        MessageQueue().pop()


def test_queue_peek_empty_none():
    assert MessageQueue().peek() is None


def test_queue_iteration_preserves_order():
    q = MessageQueue()
    msgs = [Message(_ptr(), f"h{i}") for i in range(4)]
    for m in msgs:
        q.push(m)
    assert list(q) == msgs
    assert len(q) == 4  # iteration does not consume
