"""Tests for the five swap schemes (LRU, LFU, MRU, MU, LU)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import LFU, LRU, LU, MRU, MU, make_scheme


def victim(scheme, candidates):
    """First entry of the eviction order over an explicit candidate set."""
    return next(scheme.iter_in_eviction_order(candidates))


def test_make_scheme_names():
    for name, cls in [("lru", LRU), ("lfu", LFU), ("mru", MRU), ("mu", MU), ("lu", LU)]:
        assert isinstance(make_scheme(name), cls)
        assert isinstance(make_scheme(name.upper()), cls)


def test_make_scheme_unknown():
    with pytest.raises(ValueError):
        make_scheme("arc")


def test_lru_evicts_oldest():
    lru = LRU()
    for oid in (1, 2, 3):
        lru.touch(oid)
    assert victim(lru, [1, 2, 3]) == 1
    lru.touch(1)  # 2 is now oldest
    assert victim(lru, [1, 2, 3]) == 2


def test_mru_evicts_newest():
    mru = MRU()
    for oid in (1, 2, 3):
        mru.touch(oid)
    assert victim(mru, [1, 2, 3]) == 3


def test_lfu_evicts_least_frequent():
    lfu = LFU()
    for oid, times in [(1, 3), (2, 1), (3, 2)]:
        for _ in range(times):
            lfu.touch(oid)
    assert victim(lfu, [1, 2, 3]) == 2


def test_mu_evicts_most_frequent():
    mu = MU()
    for oid, times in [(1, 3), (2, 1), (3, 2)]:
        for _ in range(times):
            mu.touch(oid)
    assert victim(mu, [1, 2, 3]) == 1


def test_lu_prefers_stale_rarely_used():
    lu = LU()
    # Object 1: used once, long ago.  Object 2: used once, just now.
    lu.touch(1)
    for _ in range(10):
        lu.touch(3)
    lu.touch(2)
    assert victim(lu, [1, 2]) == 1


def test_order_restricted_to_candidates():
    lru = LRU()
    for oid in (1, 2, 3):
        lru.touch(oid)
    assert list(lru.iter_in_eviction_order([2, 3])) == [2, 3]


def test_empty_candidates_yield_nothing():
    assert list(LRU().iter_in_eviction_order([])) == []


def test_untouched_objects_score_zero():
    lru = LRU()
    lru.touch(5)
    # Object never touched sorts before touched ones under LRU.
    assert victim(lru, [5, 9]) == 9


def test_forget_clears_state():
    lfu = LFU()
    for _ in range(5):
        lfu.touch(1)
    lfu.forget(1)
    assert lfu.count(1) == 0
    assert lfu.last_touch(1) == 0


def test_tie_breaks_on_lower_oid():
    lfu = LFU()
    lfu.touch(7)
    lfu.touch(3)
    # Equal counts: lower oid evicted first (determinism).
    assert victim(lfu, [7, 3]) == 3


def test_index_order_matches_candidate_order():
    """The incremental index walk equals ranking the indexed set."""
    for name in ("lru", "lfu", "mru", "mu", "lu"):
        scheme = make_scheme(name)
        for oid in (1, 2, 3, 2, 1, 4, 2):
            scheme.touch(oid)
            scheme.index_add(oid)
        scheme.index_discard(3)
        expected = list(scheme.iter_in_eviction_order({1, 2, 4}))
        assert list(scheme.iter_in_eviction_order()) == expected, name


def test_index_discard_is_idempotent():
    lru = LRU()
    lru.touch(1)
    lru.index_add(1)
    lru.index_discard(1)
    lru.index_discard(1)
    assert list(lru.iter_in_eviction_order()) == []


@given(
    touches=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100)
)
def test_lru_victim_is_minimum_last_touch(touches):
    """Property: LRU's victim has the minimal last-touch time."""
    lru = LRU()
    for oid in touches:
        lru.touch(oid)
    candidates = sorted(set(touches))
    first = victim(lru, candidates)
    assert lru.last_touch(first) == min(lru.last_touch(o) for o in candidates)


@given(
    touches=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100)
)
def test_lfu_victim_is_minimum_count(touches):
    lfu = LFU()
    for oid in touches:
        lfu.touch(oid)
    candidates = sorted(set(touches))
    first = victim(lfu, candidates)
    assert lfu.count(first) == min(lfu.count(o) for o in candidates)


@given(
    touches=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60),
    scheme_name=st.sampled_from(["lru", "lfu", "mru", "mu", "lu"]),
)
def test_all_schemes_rank_exactly_the_candidates(touches, scheme_name):
    """Property: the eviction order is a permutation of the candidates."""
    scheme = make_scheme(scheme_name)
    for oid in touches:
        scheme.touch(oid)
    candidates = sorted(set(touches))
    order = list(scheme.iter_in_eviction_order(candidates))
    assert sorted(order) == candidates
