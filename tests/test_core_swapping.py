"""Tests for the five swap schemes (LRU, LFU, MRU, MU, LU)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import LFU, LRU, LU, MRU, MU, make_scheme


def test_make_scheme_names():
    for name, cls in [("lru", LRU), ("lfu", LFU), ("mru", MRU), ("mu", MU), ("lu", LU)]:
        assert isinstance(make_scheme(name), cls)
        assert isinstance(make_scheme(name.upper()), cls)


def test_make_scheme_unknown():
    with pytest.raises(ValueError):
        make_scheme("arc")


def test_lru_evicts_oldest():
    lru = LRU()
    for oid in (1, 2, 3):
        lru.touch(oid)
    assert lru.victim([1, 2, 3]) == 1
    lru.touch(1)  # 2 is now oldest
    assert lru.victim([1, 2, 3]) == 2


def test_mru_evicts_newest():
    mru = MRU()
    for oid in (1, 2, 3):
        mru.touch(oid)
    assert mru.victim([1, 2, 3]) == 3


def test_lfu_evicts_least_frequent():
    lfu = LFU()
    for oid, times in [(1, 3), (2, 1), (3, 2)]:
        for _ in range(times):
            lfu.touch(oid)
    assert lfu.victim([1, 2, 3]) == 2


def test_mu_evicts_most_frequent():
    mu = MU()
    for oid, times in [(1, 3), (2, 1), (3, 2)]:
        for _ in range(times):
            mu.touch(oid)
    assert mu.victim([1, 2, 3]) == 1


def test_lu_prefers_stale_rarely_used():
    lu = LU()
    # Object 1: used once, long ago.  Object 2: used once, just now.
    lu.touch(1)
    for _ in range(10):
        lu.touch(3)
    lu.touch(2)
    assert lu.victim([1, 2]) == 1


def test_victim_restricted_to_candidates():
    lru = LRU()
    for oid in (1, 2, 3):
        lru.touch(oid)
    assert lru.victim([2, 3]) == 2


def test_victim_empty_raises():
    with pytest.raises(ValueError):
        LRU().victim([])


def test_untouched_objects_score_zero():
    lru = LRU()
    lru.touch(5)
    # Object never touched sorts before touched ones under LRU.
    assert lru.victim([5, 9]) == 9


def test_forget_clears_state():
    lfu = LFU()
    for _ in range(5):
        lfu.touch(1)
    lfu.forget(1)
    assert lfu.count(1) == 0
    assert lfu.last_touch(1) == 0


def test_tie_breaks_on_lower_oid():
    lfu = LFU()
    lfu.touch(7)
    lfu.touch(3)
    # Equal counts: lower oid evicted first (determinism).
    assert lfu.victim([7, 3]) == 3


@given(
    touches=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100)
)
def test_lru_victim_is_minimum_last_touch(touches):
    """Property: LRU's victim has the minimal last-touch time."""
    lru = LRU()
    for oid in touches:
        lru.touch(oid)
    candidates = sorted(set(touches))
    victim = lru.victim(candidates)
    assert lru.last_touch(victim) == min(lru.last_touch(o) for o in candidates)


@given(
    touches=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100)
)
def test_lfu_victim_is_minimum_count(touches):
    lfu = LFU()
    for oid in touches:
        lfu.touch(oid)
    candidates = sorted(set(touches))
    victim = lfu.victim(candidates)
    assert lfu.count(victim) == min(lfu.count(o) for o in candidates)


@given(
    touches=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60),
    scheme_name=st.sampled_from(["lru", "lfu", "mru", "mu", "lu"]),
)
def test_all_schemes_pick_from_candidates(touches, scheme_name):
    """Property: every scheme returns one of the offered candidates."""
    scheme = make_scheme(scheme_name)
    for oid in touches:
        scheme.touch(oid)
    candidates = sorted(set(touches))
    assert scheme.victim(candidates) in candidates
