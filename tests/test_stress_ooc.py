"""Stress tests: the runtime under sustained out-of-core pressure.

Every run here finishes with a full cross-layer invariant sweep — the
point is not that storms complete, but that the four layers still agree
with each other after heavy eviction/reload/migration churn under every
swap scheme and directory policy.
"""

import pytest

from repro.core import MRTSConfig
from repro.testing import RuntimeHarness, WorkloadSpec, run_storm

pytestmark = pytest.mark.stress

TIGHT = 20 * 1024  # forces steady eviction churn for the specs below

SPEC = WorkloadSpec(
    n_actors=10, payload_bytes=4096, initial_pulses=3, hops=5, fanout=2,
    grow_every=4, grow_bytes=512, seed=13,
)


# ------------------------------------------------------------ scheme matrix
@pytest.mark.parametrize("scheme", MRTSConfig.VALID_SCHEMES)
def test_storm_under_each_swap_scheme(scheme):
    h = RuntimeHarness(
        n_nodes=3, memory_bytes=TIGHT,
        config=MRTSConfig(swap_scheme=scheme),
    )
    h.run_storm(SPEC)  # raises InvariantViolation on any disagreement
    report = h.report(f"storm[{scheme}]")
    assert report.ok
    assert report.evictions > 0, "budget not tight enough to stress swapping"


@pytest.mark.parametrize("policy", MRTSConfig.VALID_DIRECTORY)
def test_storm_under_each_directory_policy(policy):
    h = RuntimeHarness(
        n_nodes=3, memory_bytes=TIGHT,
        config=MRTSConfig(directory_policy=policy),
    )
    h.run_storm(SPEC)
    assert h.report(policy).ok


# ----------------------------------------------------------------- real disk
def test_storm_spilling_to_real_files(spill_dir):
    """FileBackend spill: objects genuinely leave RAM through the fs."""
    h = RuntimeHarness(n_nodes=2, memory_bytes=TIGHT, spill_dir=str(spill_dir))
    h.run_storm(SPEC)
    assert h.report("file-spill").ok
    stored = sum(n.storage.stores for n in h.runtime.nodes)
    assert stored > 0
    assert any(spill_dir.rglob("obj-*.bin"))


# ----------------------------------------------------------------- migration
def test_migration_churn_keeps_layers_consistent():
    h = RuntimeHarness(n_nodes=3, memory_bytes=64 * 1024)
    actors = h.run_storm(WorkloadSpec(n_actors=9, payload_bytes=2048, seed=5))
    # Rotate every actor one node to the right, twice, re-pulsing between.
    for round_ in range(2):
        for ptr in actors:
            here = h.runtime.object_location(ptr)
            h.runtime.migrate(ptr, (here + 1) % 3)
        h.run_and_check()
        h.runtime.post(actors[round_], "pulse", 3, 2, f"mig{round_}")
        h.run_and_check()
    locations = {h.runtime.object_location(p) for p in actors}
    assert len(locations) > 1  # actors really spread across nodes


# --------------------------------------------------------------- determinism
def test_identical_specs_produce_identical_runs():
    """Same seed, same config: state AND schedule statistics must match."""

    def one_run():
        h = RuntimeHarness(n_nodes=3, memory_bytes=TIGHT)
        actors = h.run_storm(SPEC)
        state = {
            p.oid: (
                h.runtime.get_object(p).hits,
                h.runtime.get_object(p).forwarded,
                len(h.runtime.get_object(p).payload),
            )
            for p in actors
        }
        stats = h.runtime.stats
        counters = (
            stats.total_time,
            stats.messages_sent,
            sum(n.ooc.evictions for n in h.runtime.nodes),
        )
        return state, counters

    state_a, counters_a = one_run()
    state_b, counters_b = one_run()
    assert state_a == state_b
    assert counters_a == counters_b


def test_final_state_is_schedule_independent():
    """Different cluster shapes, same spec: application state converges.

    The cascade tree is a pure function of the seed, so hits/forwarded per
    actor oid must not depend on node count, memory pressure, or scheme.
    """

    def states(n_nodes, memory, scheme):
        h = RuntimeHarness(
            n_nodes=n_nodes, memory_bytes=memory,
            config=MRTSConfig(swap_scheme=scheme),
        )
        actors = h.run_storm(SPEC)
        return {
            p.oid: (h.runtime.get_object(p).hits,
                    h.runtime.get_object(p).forwarded)
            for p in actors
        }

    # Actor oid assignment must match across runs for this comparison:
    # run_storm creates actors first, in order, so oids line up.
    baseline = states(3, TIGHT, "lru")
    assert states(2, 256 * 1024, "lru") == baseline
    assert states(3, TIGHT, "mru") == baseline
    assert states(4, 32 * 1024, "lfu") == baseline


def test_different_seeds_diverge():
    def run_with_seed(seed):
        h = RuntimeHarness(n_nodes=2, memory_bytes=256 * 1024)
        spec = WorkloadSpec(n_actors=8, initial_pulses=2, hops=5, seed=seed)
        actors = run_storm(h.runtime, spec)
        return tuple(h.runtime.get_object(p).hits for p in actors)

    assert run_with_seed(1) != run_with_seed(2)
