"""Property tests pinning the consistent-hash shard map.

The shard map is the contract everything in :mod:`repro.dist` leans on:
re-homing moves *only* the dead worker's objects, a join steals only the
keys it now owns, and no worker ends up with a pathological share.  These
properties are pinned with Hypothesis so the hash function and ring
construction cannot drift silently.

The uniformity bound (max shard within 2x of the ideal share) is asserted
inside the validated envelope for our vnode count (192/member): 2-12
members with at least ``max(64, 32 * n)`` keys.  A brute-force scan over
that envelope measured a worst max/ideal ratio of 1.55; smaller key
populations are statistically noisy (4 keys/member can legitimately land
2x on one shard) and are out of contract.
"""

from hypothesis import given, settings, strategies as st

from repro.dist import HashRing, moved_keys, shard_hash

members_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000),
    min_size=2, max_size=12, unique=True,
)


def keys_for(n_members, salt=0):
    return [salt * 100_000 + k for k in range(max(64, 32 * n_members))]


# ------------------------------------------------------------- determinism
@given(members=members_strategy, key=st.integers())
@settings(max_examples=60, deadline=None)
def test_assignment_is_stable_across_ring_rebuilds(members, key):
    """Two rings built from the same members agree on every key —
    the coordinator and any observer can recompute the map independently."""
    a, b = HashRing(members), HashRing(list(reversed(members)))
    assert a.assign(key) == b.assign(key)
    assert a.assign(key) in members


@given(key=st.one_of(st.integers(), st.text(max_size=40)))
@settings(max_examples=100, deadline=None)
def test_shard_hash_is_process_stable(key):
    """The hash is a pure function of repr(key) — never Python's salted
    ``hash()`` — so forked workers and the coordinator always agree."""
    assert shard_hash(key) == shard_hash(key)
    assert 0 <= shard_hash(key) < 1 << 64


# ------------------------------------------------------ minimal disruption
@given(members=members_strategy, joiner=st.integers(min_value=20_000, max_value=30_000))
@settings(max_examples=40, deadline=None)
def test_join_moves_keys_only_to_the_new_member(members, joiner):
    before = HashRing(members)
    after = HashRing(members + [joiner])
    keys = keys_for(len(members))
    moved = moved_keys(before, after, keys)
    # Every moved key lands on the joiner; nothing shuffles between
    # incumbents (the consistent-hashing guarantee).
    for key, (old, new) in moved.items():
        assert new == joiner
        assert old in members
    # Unmoved keys keep their owner.
    for key in keys:
        if key not in moved:
            assert before.assign(key) == after.assign(key)


@given(members=members_strategy, data=st.data())
@settings(max_examples=40, deadline=None)
def test_leave_moves_only_the_departed_members_keys(members, data):
    departed = data.draw(st.sampled_from(members))
    before = HashRing(members)
    after = HashRing([m for m in members if m != departed])
    keys = keys_for(len(members))
    moved = moved_keys(before, after, keys)
    for key, (old, new) in moved.items():
        assert old == departed
        assert new != departed
    # All of the departed member's keys moved, and only those.
    orphans = [k for k in keys if before.assign(k) == departed]
    assert sorted(moved) == sorted(orphans)


@given(members=members_strategy, data=st.data())
@settings(max_examples=30, deadline=None)
def test_remove_then_add_restores_the_original_map(members, data):
    """add/remove are inverses: a re-homed worker rejoining the ring gets
    exactly its old shard back."""
    departed = data.draw(st.sampled_from(members))
    ring = HashRing(members)
    keys = keys_for(len(members))
    original = ring.assignment(keys)
    ring.remove(departed)
    assert departed not in ring
    ring.add(departed)
    assert ring.assignment(keys) == original


# ------------------------------------------------------------- uniformity
@given(members=members_strategy, salt=st.integers(min_value=0, max_value=50))
@settings(max_examples=40, deadline=None)
def test_load_is_within_2x_of_ideal(members, salt):
    ring = HashRing(members)
    keys = keys_for(len(members), salt)
    counts = {m: 0 for m in members}
    for key in keys:
        counts[ring.assign(key)] += 1
    ideal = len(keys) / len(members)
    assert max(counts.values()) <= 2 * ideal
    # And nobody starves outright.
    assert min(counts.values()) > 0


@given(members=members_strategy, key=st.integers())
@settings(max_examples=40, deadline=None)
def test_replicas_are_distinct_and_led_by_the_owner(members, key):
    ring = HashRing(members)
    n = min(3, len(members))
    reps = ring.replicas(key, n)
    assert len(reps) == len(set(reps)) == n
    assert reps[0] == ring.assign(key)
    assert all(r in members for r in reps)
