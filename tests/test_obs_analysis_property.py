"""Property tests: the event-stream analyzer reproduces RunStats.

The paper's Comp%/Comm%/Disk%/Overlap% are accumulated by the runtime in
:class:`RunStats`.  ``repro.obs.analysis.overlap_report`` recomputes them
from the observability event stream alone; these tests pin the two within
1e-6 of each other on seeded workloads spanning swap schemes, fault-free
and perf-shaped runs.
"""

import pytest

from repro.core.config import MRTSConfig
from repro.obs import (
    busy_times,
    critical_path,
    diff_reports,
    overlap_report,
    render_diff,
    utilization_report,
)
from repro.testing.harness import RuntimeHarness
from repro.testing.workloads import WorkloadSpec


def _storm_events(seed, scheme="lru"):
    harness = RuntimeHarness(
        n_nodes=3, memory_bytes=20 * 1024,
        config=MRTSConfig(swap_scheme=scheme),
    )
    sub = harness.subscribe()
    harness.run_storm(WorkloadSpec(
        n_actors=10, payload_bytes=4096, initial_pulses=3,
        hops=5, fanout=2, seed=seed,
    ))
    return list(sub.events), harness.runtime.stats


def _assert_matches(events, stats):
    n_pes = max(len(stats.nodes), 1)
    report = overlap_report(events, stats.total_time, n_pes=n_pes)
    assert report["comp_pct"] == pytest.approx(
        stats.comp_pct(n_pes), abs=1e-6)
    assert report["comm_pct"] == pytest.approx(
        stats.comm_pct(n_pes), abs=1e-6)
    assert report["disk_pct"] == pytest.approx(
        stats.disk_pct(n_pes), abs=1e-6)
    assert report["overlap_pct"] == pytest.approx(
        stats.overlap_pct(n_pes), abs=1e-6)


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_storm_overlap_matches_run_stats(seed):
    events, stats = _storm_events(seed)
    _assert_matches(events, stats)


@pytest.mark.parametrize("scheme", ["lru", "lfu", "mru"])
def test_overlap_matches_across_swap_schemes(scheme):
    events, stats = _storm_events(3, scheme=scheme)
    _assert_matches(events, stats)


def test_per_node_sums_match_node_stats_exactly():
    events, stats = _storm_events(2)
    nodes = busy_times(events)
    for rank, node in enumerate(stats.nodes):
        busy = nodes.get(rank)
        if busy is None:
            assert node.comp_time == 0.0
            continue
        # Same floats, accumulated in the same order: exact equality.
        assert busy.comp_s == node.comp_time
        assert busy.comm_span_s == node.comm_span
        assert busy.disk_span_s == node.disk_span
        assert busy.handlers == node.handlers_run


def test_perf_workload_overlap_matches_run_stats():
    from repro.perf import run_clean_read_storm, run_mesh_patch_stream

    for runner in (run_clean_read_storm, run_mesh_patch_stream):
        subs = []
        result = runner(
            seed=0, scale=0.2,
            on_runtime=lambda rt: subs.append(rt.bus.subscribe()),
        )
        _assert_matches(list(subs[0].events), result.runtime.stats)


def test_oupdr_model_overlap_matches_run_stats():
    from repro.perf import run_oupdr_model_bench

    subs = []
    result = run_oupdr_model_bench(
        seed=0, scale=0.15,
        on_runtime=lambda rt: subs.append(rt.bus.subscribe()),
    )
    _assert_matches(list(subs[0].events), result.runtime.stats)


def test_utilization_is_bounded_by_wall_clock():
    events, stats = _storm_events(4)
    total = stats.total_time
    util = utilization_report(events, total)
    assert util
    for row in util.values():
        for lane in ("compute", "disk", "network"):
            assert 0.0 <= row[f"{lane}_busy_s"] <= total + 1e-9
        assert row["any_busy_s"] <= total + 1e-9
        assert row["idle_s"] >= 0.0
        assert row["overlapped_s"] >= 0.0
        # Union across lanes can't exceed the per-lane sum.
        lane_sum = sum(row[f"{l}_busy_s"]
                       for l in ("compute", "disk", "network"))
        assert row["any_busy_s"] <= lane_sum + 1e-9


def test_critical_path_partitions_the_makespan():
    events, stats = _storm_events(5)
    total = stats.total_time
    shares = critical_path(events, total)
    covered = (shares["compute_s"] + shares["disk_s"]
               + shares["network_s"] + shares["idle_s"])
    assert covered == pytest.approx(total, rel=1e-9)
    assert shares["compute_s"] >= 0
    # Storms on a starved cluster genuinely wait on the disk sometimes.
    assert shares["disk_s"] > 0


def test_diff_reports_and_render():
    old = {"workloads": {"storm": {"bytes": 100, "makespan": 2.0}}}
    new = {"workloads": {"storm": {"bytes": 150, "makespan": 2.0},
                         "extra": {"n": 1}}}
    rows = diff_reports(old, new)
    by_metric = {r["metric"]: r for r in rows}
    assert by_metric["workloads.storm.bytes"]["delta_pct"] == 50.0
    assert by_metric["workloads.storm.makespan"]["delta_pct"] == 0.0
    assert by_metric["workloads.extra.n"]["old"] is None
    # Largest movement sorts first.
    assert rows[0]["metric"] == "workloads.storm.bytes"
    text = render_diff(rows)
    assert "workloads.storm.bytes" in text
    assert "+50.0%" in text
    filtered = render_diff(rows, threshold_pct=60.0)
    assert "workloads.storm.bytes" not in filtered
