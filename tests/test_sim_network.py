"""Tests for the interconnect model and simulated nodes/clusters."""

import pytest

from repro.sim import (
    ClusterSpec,
    Engine,
    NetworkSpec,
    NodeSpec,
    SimCluster,
    SimNetwork,
    SimNode,
    sciclone_spec,
    stems_spec,
    xeon_smp_spec,
)
from repro.util.errors import OutOfMemory


# ----------------------------------------------------------------- SimNode
def test_node_memory_accounting():
    eng = Engine()
    node = SimNode(eng, 0, NodeSpec(memory_bytes=100))
    node.allocate(60)
    assert node.memory_free == 40
    node.free(10)
    assert node.memory_used == 50
    assert node.memory_high_water == 60


def test_node_out_of_memory():
    eng = Engine()
    node = SimNode(eng, 0, NodeSpec(memory_bytes=100))
    node.allocate(90)
    with pytest.raises(OutOfMemory):
        node.allocate(20)


def test_node_free_more_than_used_raises():
    eng = Engine()
    node = SimNode(eng, 0, NodeSpec(memory_bytes=100))
    node.allocate(10)
    with pytest.raises(RuntimeError):
        node.free(20)


def test_node_negative_alloc_rejected():
    eng = Engine()
    node = SimNode(eng, 0, NodeSpec(memory_bytes=100))
    with pytest.raises(ValueError):
        node.allocate(-1)
    with pytest.raises(ValueError):
        node.free(-1)


def test_node_compute_time_scales_with_core_speed():
    eng = Engine()
    fast = SimNode(eng, 0, NodeSpec(core_speed=2.0))
    slow = SimNode(eng, 1, NodeSpec(core_speed=0.5))
    assert fast.compute_time(10.0) == pytest.approx(5.0)
    assert slow.compute_time(10.0) == pytest.approx(20.0)


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(cores=0)
    with pytest.raises(ValueError):
        NodeSpec(memory_bytes=0)
    with pytest.raises(ValueError):
        NodeSpec(core_speed=0)


# -------------------------------------------------------------- SimNetwork
def _collecting_sink(log, rank):
    def sink(src, payload):
        log.append((rank, src, payload))

    return sink


def test_network_delivers_to_sink():
    eng = Engine()
    net = SimNetwork(eng, 2, NetworkSpec(latency=0.001, bandwidth=1e6))
    log = []
    net.attach_sink(0, _collecting_sink(log, 0))
    net.attach_sink(1, _collecting_sink(log, 1))
    eng.process(net.send(0, 1, 1000, "hello"))
    eng.run()
    assert log == [(1, 0, "hello")]
    assert net.messages_sent == 1
    assert net.bytes_sent == 1000


def test_network_delivery_time_is_serialization_plus_latency():
    eng = Engine()
    net = SimNetwork(eng, 2, NetworkSpec(latency=0.5, bandwidth=100.0))
    times = []
    net.attach_sink(1, lambda src, payload: times.append(eng.now))
    eng.process(net.send(0, 1, 200, None))  # serialize 2 s + 0.5 s latency
    eng.run()
    assert times == [pytest.approx(2.5)]


def test_network_self_send_is_immediate():
    eng = Engine()
    net = SimNetwork(eng, 1, NetworkSpec(latency=0.5, bandwidth=100.0))
    times = []
    net.attach_sink(0, lambda src, payload: times.append(eng.now))
    eng.process(net.send(0, 0, 10_000, None))
    eng.run()
    assert times == [pytest.approx(0.0)]


def test_network_sender_blocks_only_for_serialization():
    """Sender's NIC is released before the message arrives (overlap!)."""
    eng = Engine()
    net = SimNetwork(eng, 2, NetworkSpec(latency=10.0, bandwidth=100.0))
    net.attach_sink(1, lambda src, payload: None)
    sender_done = []

    def sender():
        yield from net.send(0, 1, 100, None)  # 1 s serialization
        sender_done.append(eng.now)

    eng.process(sender())
    eng.run()
    assert sender_done == [pytest.approx(1.0)]
    assert eng.now == pytest.approx(11.0)  # arrival still happened


def test_network_bad_rank_rejected():
    eng = Engine()
    net = SimNetwork(eng, 2, NetworkSpec())
    with pytest.raises(ValueError):
        list(net.send(0, 5, 10, None))


def test_network_missing_sink_raises():
    eng = Engine()
    net = SimNetwork(eng, 2, NetworkSpec(latency=0.0, bandwidth=1e9))
    eng.process(net.send(0, 1, 10, None))
    with pytest.raises(RuntimeError):
        eng.run()


# -------------------------------------------------------------- SimCluster
def test_cluster_assembly():
    eng = Engine()
    spec = ClusterSpec(n_nodes=4, node=NodeSpec(cores=2, memory_bytes=1024))
    cluster = SimCluster(eng, spec)
    assert len(cluster) == 4
    assert cluster[3].rank == 3
    assert spec.total_pes == 8
    assert spec.total_memory == 4096


def test_cluster_presets_shapes():
    sci = sciclone_spec(32)
    assert sci.n_nodes == 32
    assert sci.node.cores == 2
    assert sci.node.memory_bytes == 2 * 1024**3

    stems = stems_spec()
    assert stems.n_nodes == 4
    assert stems.node.cores == 4
    assert stems.total_pes == 16

    xeon = xeon_smp_spec()
    assert xeon.n_nodes == 1
    assert xeon.node.cores == 4


def test_stems_cores_faster_than_sciclone():
    """The paper notes STEMS has faster per-PE speed than old SciClone."""
    assert stems_spec().node.core_speed > sciclone_spec().node.core_speed
