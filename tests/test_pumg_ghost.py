"""Tests for the ghost-layer exchange (repro.pumg.ghost + driver wiring).

Unit level: version-stamped ghost tables (monotone installs, idempotent
replay) and per-neighbor boundary-strip aggregation.  End to end: UPDR,
NUPDR and PCDM under ``ghost_sync`` converge to quality meshes while
pushing owner strips over fanout multicast, and the ghost-freshness
invariant (:func:`repro.testing.invariants.check_ghosts`) holds at every
serve-layer phase boundary.
"""

import pytest

from repro.geometry import unit_square
from repro.pumg import ONUPDROptions, run_nupdr, run_pcdm, run_updr
from repro.pumg.ghost import (
    GhostTable,
    boundary_strips,
    strip_nbytes,
)
from repro.serve.meshjob import JobSpec, run_job_solo
from repro.testing.harness import FixedCostModel

# Graded sizing that yields a multi-leaf quadtree (a neighborless single
# leaf would make the ghost exchange vacuous).
GRADED = ("point_source", [((0.2, 0.2), 0.01)], 0.12, 0.6)


# ------------------------------------------------------------- GhostTable
def test_ghost_table_installs_monotonically():
    t = GhostTable()
    assert t.install(3, 1, [(0.0, 0.0)])
    assert t.version_of(3) == 1
    # Same version again: a replayed push must be dropped.
    assert not t.install(3, 1, [(9.0, 9.0)])
    assert t.copies[3].points == [(0.0, 0.0)]
    # Older version: dropped too.
    assert not t.install(3, 0, [(8.0, 8.0)])
    # Newer version replaces, even with an empty strip.
    assert t.install(3, 2, [])
    assert t.copies[3].points == []
    assert t.installs == 2
    assert t.stale_drops == 2


def test_ghost_table_points_of_concatenates_known_owners():
    t = GhostTable()
    t.install(1, 1, [(0.1, 0.1)])
    t.install(2, 1, [(0.2, 0.2), (0.3, 0.3)])
    pts = t.points_of([1, 2, 99])
    assert pts == [(0.1, 0.1), (0.2, 0.2), (0.3, 0.3)]
    assert t.version_of(99) == -1


# -------------------------------------------------------- boundary strips
def test_boundary_strips_aggregates_per_neighbor():
    boxes = {1: (1.0, 0.0, 2.0, 1.0), 2: (0.0, 1.0, 1.0, 2.0)}
    points = [(0.95, 0.5), (0.5, 0.95), (0.5, 0.5), (0.98, 0.98)]
    strips = boundary_strips(points, boxes, margin=0.1)
    assert strips[1] == [(0.95, 0.5), (0.98, 0.98)]
    assert strips[2] == [(0.5, 0.95), (0.98, 0.98)]


def test_boundary_strips_always_includes_every_neighbor():
    """An empty strip must still be present: it overwrites stale ghosts."""
    boxes = {7: (1.0, 0.0, 2.0, 1.0)}
    strips = boundary_strips([(0.1, 0.1)], boxes, margin=0.05)
    assert strips == {7: []}


def test_boundary_strips_margin_scales_with_sizing():
    boxes = {1: (1.0, 0.0, 2.0, 1.0)}
    far = [(0.7, 0.5)]
    # With h=0.01 the strip margin (4h) misses the point; h=0.1 reaches.
    assert boundary_strips(far, boxes, sizing=lambda p: 0.01) == {1: []}
    assert boundary_strips(far, boxes, sizing=lambda p: 0.1) == {1: far}


def test_strip_nbytes_counts_points_and_headers():
    strips = {1: [(0.0, 0.0), (1.0, 1.0)], 2: []}
    assert strip_nbytes(strips) == (16 * 2 + 24) + 24


# ------------------------------------------------------------ UPDR e2e
def test_updr_ghost_sync_meets_quality():
    res = run_updr(unit_square(), h=0.1, nx=3, ny=3, ghost_sync=True)
    assert res.quality.min_angle_deg > 18.0
    assert res.quality.total_area == pytest.approx(1.0, rel=1e-6)
    # The exchange actually ran: owners pushed versioned strips over
    # fanout multicast and the coordinator's ack barrier saw them.
    assert res.extras["ghost_pushes"] > 0
    assert res.extras["ghost_installs"] > 0
    assert res.extras["ghost_acks"] > 0
    assert res.extras["ghost_bytes"] > 0
    assert res.extras["multicast_sends"] > 0


def test_updr_ghost_sync_mesh_size_comparable_to_pull_mode():
    pull = run_updr(unit_square(), h=0.12, nx=2, ny=2)
    push = run_updr(unit_square(), h=0.12, nx=2, ny=2, ghost_sync=True)
    assert pull.n_points * 0.5 <= push.n_points <= pull.n_points * 2.0
    assert push.quality.min_angle_deg > 18.0


# ----------------------------------------------------------- NUPDR e2e
def test_nupdr_ghost_sync_meets_quality():
    res = run_nupdr(
        unit_square(), GRADED, granularity=4.0,
        options=ONUPDROptions(ghost_sync=True),
    )
    assert res.quality.min_angle_deg > 18.0
    assert res.extras["ghost_pushes"] > 0
    assert res.extras["ghost_installs"] > 0
    assert res.extras["ghost_acks"] > 0


# ------------------------------------------------------------ PCDM e2e
def test_pcdm_ghost_sync_batches_splits():
    res = run_pcdm(unit_square(), h=0.08, n_parts=4, ghost_sync=True)
    assert res.extras["min_angle_deg"] > 18.0
    # Interface splits rode version-stamped batch fanouts.
    assert res.extras["ghost_batches"] > 0
    assert res.extras["ghost_bytes"] > 0
    assert res.extras["multicast_sends"] > 0


def test_pcdm_ghost_sync_is_deterministic():
    # A fixed cost model pins the virtual timeline: PCDM's result is a
    # function of split-arrival interleaving (Ruppert insertion order),
    # so identical timelines — not merely identical inputs — are what
    # the determinism contract promises (docs/architecture.md).
    def run():
        return run_pcdm(
            unit_square(), h=0.1, n_parts=3, ghost_sync=True,
            cost_model=FixedCostModel(1e-4),
        )

    a, b = run(), run()
    assert a.n_points == b.n_points
    assert a.n_triangles == b.n_triangles


# --------------------------------------------- serve-layer ghost checks
def test_serve_updr_ghost_job_passes_boundary_invariants():
    """run_job_solo runs check_ghosts at every phase boundary."""
    spec = JobSpec.from_request(
        dict(method="updr", geometry="unit_square", h=0.12, nx=2, ny=2,
             ghost_sync=True, memory_bytes=256 * 1024)
    )
    job = run_job_solo(spec)
    assert job.violations == []
    assert job.result_summary()["n_points"] > 0


def test_serve_ghost_job_is_deterministic():
    spec = JobSpec.from_request(
        dict(method="updr", geometry="unit_square", h=0.12, nx=2, ny=2,
             ghost_sync=True, memory_bytes=256 * 1024)
    )
    a, b = run_job_solo(spec), run_job_solo(spec)
    assert a.state_digest() == b.state_digest()


def test_jobspec_ghost_sync_round_trips():
    spec = JobSpec.from_request(
        dict(method="nupdr", geometry="unit_square", h=0.1,
             ghost_sync=True, memory_bytes=256 * 1024)
    )
    assert spec.ghost_sync is True
    assert JobSpec.from_request(spec.to_dict()) == spec
