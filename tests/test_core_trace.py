"""Tests for execution tracing."""

from repro.core import MobileObject, MRTS, handler
from repro.core.trace import attach_tracer
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Blob(MobileObject):
    def __init__(self, pointer, size=40_000):
        super().__init__(pointer)
        self.data = bytes(size)
        self.hits = 0

    @handler
    def hit(self, ctx, peer=None):
        self.hits += 1
        if peer is not None:
            ctx.post(peer, "hit")


def build(memory=1 << 22, n_nodes=2):
    cluster = ClusterSpec(
        n_nodes=n_nodes, node=NodeSpec(cores=1, memory_bytes=memory)
    )
    return MRTS(cluster)


def test_tracer_records_handlers_and_sends():
    rt = build()
    tracer = attach_tracer(rt)
    a = rt.create_object(Blob, node=0)
    b = rt.create_object(Blob, node=1)
    rt.post(a, "hit", peer=b)
    rt.run()
    kinds = tracer.summary()
    assert kinds.get("handler") == 2
    assert kinds.get("send", 0) >= 1
    handler_events = tracer.by_kind("handler")
    assert any("hit" in e.detail for e in handler_events)


def test_tracer_records_disk_when_spilling():
    rt = build(memory=100_000, n_nodes=1)
    tracer = attach_tracer(rt)
    ptrs = [rt.create_object(Blob, 40_000) for _ in range(4)]
    for p in ptrs:
        rt.post(p, "hit")
    rt.run()
    disk = tracer.by_kind("disk")
    assert disk
    assert any("store" in e.detail for e in disk)
    assert any("load" in e.detail for e in disk)


def test_timeline_rendering():
    rt = build()
    tracer = attach_tracer(rt)
    a = rt.create_object(Blob, node=0)
    rt.post(a, "hit")
    rt.run()
    text = tracer.timeline()
    assert "handler" in text
    assert "node 0" in text
    limited = tracer.timeline(limit=1)
    assert len(limited.splitlines()) == 1


def test_timestamps_monotone_per_sort():
    rt = build()
    tracer = attach_tracer(rt)
    a = rt.create_object(Blob, node=0)
    b = rt.create_object(Blob, node=1)
    for _ in range(3):
        rt.post(a, "hit", peer=b)
    rt.run()
    times = [e.time for e in sorted(tracer.events, key=lambda e: e.time)]
    assert times == sorted(times)
    assert all(e.duration >= 0 for e in tracer.events)


def test_detach_stops_recording():
    rt = build()
    tracer = attach_tracer(rt)
    a = rt.create_object(Blob, node=0)
    rt.post(a, "hit")
    rt.run()
    before = len(tracer.events)
    tracer.detach()
    rt.post(a, "hit")
    rt.run()
    assert len(tracer.events) == before


def test_detach_is_idempotent():
    rt = build()
    tracer = attach_tracer(rt)
    tracer.detach()
    tracer.detach()  # second call must be a no-op, not an error
    assert rt.bus.active is False


def test_context_manager_detaches_even_on_exception():
    rt = build()
    try:
        with attach_tracer(rt) as tracer:
            a = rt.create_object(Blob, node=0)
            rt.post(a, "hit")
            rt.run()
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert rt.bus.active is False
    before = len(tracer.events)
    rt.post(a, "hit")
    rt.run()
    assert len(tracer.events) == before


def test_ring_buffer_bounds_events_and_counts_drops():
    rt = build(memory=100_000, n_nodes=1)
    tracer = attach_tracer(rt, capacity=10)
    ptrs = [rt.create_object(Blob, 40_000) for _ in range(4)]
    for p in ptrs:
        rt.post(p, "hit")
    rt.run()
    assert len(tracer.events) == 10
    assert tracer.dropped > 0
    # An unbounded tracer on the same run sees strictly more.
    rt2 = build(memory=100_000, n_nodes=1)
    full = attach_tracer(rt2)
    ptrs2 = [rt2.create_object(Blob, 40_000) for _ in range(4)]
    for p in ptrs2:
        rt2.post(p, "hit")
    rt2.run()
    assert len(full.events) == len(tracer.events) + tracer.dropped


def test_unbounded_by_default():
    rt = build()
    tracer = attach_tracer(rt)
    a = rt.create_object(Blob, node=0)
    b = rt.create_object(Blob, node=1)
    for _ in range(3):
        rt.post(a, "hit", peer=b)
    rt.run()
    assert tracer.dropped == 0
    assert len(tracer.events) > 0


def test_tracer_rides_bus_without_monkey_patching():
    """The shim must not mutate runtime internals to observe them."""
    rt = build()
    tracer = attach_tracer(rt)
    # The old implementation wrapped methods by stuffing the instance
    # __dict__; the shim leaves the runtime untouched and subscribes.
    assert "_execute_handler" not in rt.__dict__
    assert "_disk_xfer" not in rt.__dict__
    assert rt.bus.active is True
    tracer.detach()
    assert rt.bus.active is False
