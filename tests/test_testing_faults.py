"""Unit tests for the storage fault injector."""

import pytest

from repro.core import MemoryBackend
from repro.testing import FaultPlan, FaultyBackend, StorageFault


def make(plan):
    return FaultyBackend(MemoryBackend(), plan)


# ------------------------------------------------------------------ planning
def test_plan_validates_rates_and_ordinals():
    with pytest.raises(ValueError):
        FaultPlan(store_fail_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(load_fail_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(torn_write_fraction=1.0)
    with pytest.raises(ValueError):
        FaultPlan(fail_store_at=0)
    with pytest.raises(ValueError):
        FaultPlan(fail_load_at=-1)


# ------------------------------------------------------------------ ordinals
def test_nth_store_fails_and_rest_succeed():
    b = make(FaultPlan(fail_store_at=2))
    b.store(1, b"one")
    with pytest.raises(StorageFault):
        b.store(2, b"two")
    b.store(3, b"three")  # not fail-stop: later stores work
    assert b.load(1) == b"one"
    assert not b.contains(2)
    assert b.stores == 3 and b.faults_injected == 1


def test_nth_load_fails():
    b = make(FaultPlan(fail_load_at=2))
    b.store(1, b"x")
    assert b.load(1) == b"x"
    with pytest.raises(StorageFault):
        b.load(1)
    assert b.load(1) == b"x"
    assert b.loads == 3


def test_fail_stop_bricks_the_backend():
    b = make(FaultPlan(fail_store_at=1, fail_stop=True))
    with pytest.raises(StorageFault):
        b.store(1, b"x")
    assert b.dead
    for op in (lambda: b.store(2, b"y"), lambda: b.load(1), lambda: b.delete(1)):
        with pytest.raises(StorageFault, match="fail-stopped"):
            op()


# -------------------------------------------------------------- intermittent
def test_intermittent_failures_are_seed_reproducible():
    def failure_pattern(seed):
        b = make(FaultPlan(store_fail_rate=0.4, seed=seed))
        pattern = []
        for i in range(50):
            try:
                b.store(i, b"d")
                pattern.append(False)
            except StorageFault:
                pattern.append(True)
        return pattern

    a, b_, c = failure_pattern(1), failure_pattern(1), failure_pattern(2)
    assert a == b_          # same seed, same schedule
    assert a != c           # different seed, different schedule
    assert any(a) and not all(a)


def test_zero_rates_never_fail():
    b = make(FaultPlan())
    for i in range(100):
        b.store(i, bytes([i]))
    assert all(b.load(i) == bytes([i]) for i in range(100))
    assert b.faults_injected == 0


# --------------------------------------------------------------- torn writes
def test_torn_write_persists_prefix():
    b = make(FaultPlan(fail_store_at=1, torn_write_fraction=0.25))
    with pytest.raises(StorageFault):
        b.store(7, bytes(100))
    assert b.contains(7)
    assert b.size(7) == 25


def test_failed_store_without_tearing_preserves_old_contents():
    b = make(FaultPlan(fail_store_at=2))
    b.store(7, b"old")
    with pytest.raises(StorageFault):
        b.store(7, b"newer")
    assert b.load(7) == b"old"


# --------------------------------------------------------------- passthrough
def test_passthrough_bookkeeping():
    b = make(FaultPlan())
    b.store(1, b"aa")
    b.store(2, b"bbbb")
    assert sorted(b.stored_ids()) == [1, 2]
    assert b.total_bytes() == 6
    assert b.largest_object() == 4
    b.delete(1)
    assert not b.contains(1)
