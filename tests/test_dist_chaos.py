"""The distributed chaos cells: crash and wire faults under invariants.

Each cell drives the same seeded storm twice — once on the fault-free
single-process reference, once on a :class:`~repro.dist.DistRuntime`
under injected faults — checks :func:`~repro.testing.invariants.check_dist`
at every phase boundary, and requires byte-equal final application state.
The worker-kill cell additionally proves the recovery *mechanism*: the
shard was re-homed (no full-world rewind) and survivors kept their state.
"""

import dataclasses

import pytest

from repro.testing.chaos import (
    DIST_CHAOS_MATRIX,
    DistChaosSpec,
    run_dist_chaos_case,
    run_dist_chaos_matrix,
)


@pytest.mark.parametrize("spec", DIST_CHAOS_MATRIX, ids=lambda s: s.name)
def test_dist_chaos_cell_converges(spec):
    report = run_dist_chaos_case(spec)
    assert report.ok, report.problems
    assert report.state_matches
    assert not report.violations


def test_worker_kill_cell_proves_rehoming():
    spec = next(s for s in DIST_CHAOS_MATRIX if s.expect_rehome)
    report = run_dist_chaos_case(spec)
    assert report.restarts == 1  # exactly one shard re-home, no rewind
    assert any("rehome" in e for e in report.events)


def test_wire_chaos_cell_actually_exercised_the_faults():
    spec = next(s for s in DIST_CHAOS_MATRIX if s.drop_rate > 0)
    report = run_dist_chaos_case(spec)
    assert report.retries > 0  # drops forced retransmissions
    assert report.restarts == 0  # nobody died


def test_chaos_cells_replay_deterministically():
    spec = next(s for s in DIST_CHAOS_MATRIX if s.drop_rate > 0)
    a, b = run_dist_chaos_case(spec), run_dist_chaos_case(spec)
    assert (a.ok, a.retries, a.restarts) == (b.ok, b.retries, b.restarts)


def test_combined_kill_and_wire_chaos_still_converges():
    """Stacked faults: a lossy wire *and* a mid-epoch crash."""
    spec = dataclasses.replace(
        DIST_CHAOS_MATRIX[0],
        name="dist-kill-plus-wire",
        drop_rate=0.1,
        dup_rate=0.1,
        chaos_seed=3,
    )
    report = run_dist_chaos_case(spec)
    assert report.ok, report.problems
    assert report.restarts == 1


def test_matrix_runner_covers_every_cell():
    reports = run_dist_chaos_matrix()
    assert {r.name for r in reports} == {s.name for s in DIST_CHAOS_MATRIX}
    assert all(r.ok for r in reports), [
        (r.name, r.problems) for r in reports if not r.ok
    ]


def test_spec_validation():
    with pytest.raises(ValueError):
        DistChaosSpec(name="bad", workers=0)
