"""Tests for the metrics registry and the live bus collector."""

import json

import pytest

from repro.obs import MetricsCollector, MetricsRegistry, collect_run_stats
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.testing.harness import RuntimeHarness
from repro.testing.workloads import WorkloadSpec


def test_counter_labels_and_monotonicity():
    c = Counter("requests_total")
    c.inc(node=0)
    c.inc(2.5, node=0)
    c.inc(node=1)
    assert c.value(node=0) == 3.5
    assert c.value(node=1) == 1.0
    assert c.value(node=7) == 0.0
    with pytest.raises(ValueError):
        c.inc(-1.0, node=0)


def test_gauge_set_and_inc():
    g = Gauge("depth")
    g.set(4, node=0)
    g.inc(node=0)
    g.inc(-2, node=0)
    assert g.value(node=0) == 3.0


def test_histogram_buckets_sum_count():
    h = Histogram("lat", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == [0.1, 1.0, "+inf"]
    (cell,) = snap["values"]
    assert cell["counts"] == [1, 1, 1]
    assert cell["count"] == 3
    assert cell["sum"] == pytest.approx(5.55)
    assert h.value() == 3


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(1.0, 0.1))


def test_registry_get_or_create_and_type_conflict():
    r = MetricsRegistry()
    c1 = r.counter("x_total")
    c2 = r.counter("x_total")
    assert c1 is c2
    with pytest.raises(TypeError):
        r.gauge("x_total")
    assert "x_total" in r
    assert r["x_total"] is c1
    assert r.names() == ["x_total"]


def test_registry_snapshot_is_json():
    r = MetricsRegistry()
    r.counter("a_total", "help a").inc(node=0)
    r.gauge("b").set(1.5)
    r.histogram("c").observe(0.2)
    doc = json.loads(r.to_json())
    assert doc["a_total"]["type"] == "counter"
    assert doc["a_total"]["values"] == [
        {"labels": {"node": "0"}, "value": 1.0}
    ]
    assert doc["b"]["type"] == "gauge"
    assert doc["c"]["type"] == "histogram"


def _run_observed_storm(seed=0):
    harness = RuntimeHarness(n_nodes=2, memory_bytes=24 * 1024)
    collector = MetricsCollector()
    collector.attach(harness.bus)
    harness.run_storm(WorkloadSpec(
        n_actors=8, payload_bytes=4096, initial_pulses=2,
        hops=4, fanout=2, seed=seed,
    ))
    return harness, collector


def test_collector_matches_run_stats():
    harness, collector = _run_observed_storm()
    stats = harness.runtime.stats
    for rank, node in enumerate(stats.nodes):
        assert collector.handlers.value(node=rank) == node.handlers_run
        assert collector.comp_seconds.value(node=rank) == pytest.approx(
            node.comp_time, abs=1e-12
        )
        got_span = collector.disk_span.value(node=rank)
        assert got_span == pytest.approx(node.disk_span, abs=1e-12)
    total_events = sum(
        v["value"]
        for v in collector.events_seen.snapshot()["values"]
    )
    assert total_events > 0


def test_collector_counts_disk_ops_by_direction():
    harness, collector = _run_observed_storm()
    stats = harness.runtime.stats
    stores = sum(
        collector.disk_ops.value(node=rank, op="store")
        for rank in range(len(stats.nodes))
    )
    loads = sum(
        collector.disk_ops.value(node=rank, op="load")
        for rank in range(len(stats.nodes))
    )
    assert stores == stats.objects_stored
    assert loads == stats.objects_loaded


def test_collect_run_stats_bridges_legacy_accounting():
    harness, _ = _run_observed_storm()
    stats = harness.runtime.stats
    registry = collect_run_stats(stats)
    assert registry["mrts_run_total_time_seconds"].value() == pytest.approx(
        stats.total_time
    )
    assert registry["mrts_run_overlap_pct"].value() == pytest.approx(
        stats.overlap_pct()
    )
    for rank, node in enumerate(stats.nodes):
        assert registry["mrts_node_handlers"].value(node=rank) == (
            node.handlers_run
        )
    # The whole document survives a JSON round-trip.
    json.loads(registry.to_json())
