"""Tests for termination detection and ready-queue scheduling."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ReadyQueue, TerminationDetector


# ------------------------------------------------------ TerminationDetector
def test_detector_fires_at_zero():
    fired = []
    det = TerminationDetector(lambda: fired.append(True))
    det.add(2)
    det.done()
    assert not fired
    det.done()
    assert fired == [True]
    assert det.quiescent


def test_detector_not_quiescent_before_start():
    det = TerminationDetector()
    assert not det.quiescent  # zero but never started


def test_detector_negative_guard():
    det = TerminationDetector()
    det.add(1)
    det.done()
    with pytest.raises(RuntimeError):
        det.done()


def test_detector_add_negative_rejected():
    with pytest.raises(ValueError):
        TerminationDetector().add(-1)


def test_detector_refires_on_later_quiescence():
    fired = []
    det = TerminationDetector(lambda: fired.append(det.total_items))
    det.add(1)
    det.done()
    det.add(1)
    det.done()
    assert fired == [1, 2]


@given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30))
def test_detector_balanced_sequences(additions):
    """Property: after retiring exactly what was added, we are quiescent."""
    det = TerminationDetector()
    total = 0
    for n in additions:
        det.add(n)
        total += n
    for _ in range(total):
        det.done()
    assert det.quiescent
    assert det.total_items == total


# -------------------------------------------------------------- ReadyQueue
def _lens(mapping):
    return lambda oid: mapping.get(oid, 0)


def test_ready_fifo_order():
    rq = ReadyQueue()
    lengths = {1: 1, 2: 1, 3: 1}
    for oid in (1, 2, 3):
        rq.push(oid)
    assert [rq.pop(_lens(lengths)) for _ in range(3)] == [1, 2, 3]


def test_ready_push_idempotent():
    rq = ReadyQueue()
    rq.push(1)
    rq.push(1)
    assert len(rq) == 1


def test_ready_skips_emptied_queues():
    rq = ReadyQueue()
    rq.push(1)
    rq.push(2)
    assert rq.pop(_lens({2: 1})) == 2  # 1 has no messages anymore


def test_ready_pop_empty_raises():
    with pytest.raises(IndexError):
        ReadyQueue().pop(_lens({}))
    rq = ReadyQueue()
    rq.push(1)
    with pytest.raises(IndexError):
        rq.pop(_lens({}))  # ready but queue empty


def test_busiest_discipline():
    rq = ReadyQueue("busiest")
    for oid in (1, 2, 3):
        rq.push(oid)
    assert rq.pop(_lens({1: 1, 2: 5, 3: 2})) == 2


def test_boost_overrides_fifo():
    rq = ReadyQueue()
    for oid in (1, 2, 3):
        rq.push(oid)
    rq.boost(3, 10.0)
    assert rq.pop(_lens({1: 1, 2: 1, 3: 1})) == 3
    # Boost is consumed with the pop.
    assert rq.pop(_lens({1: 1, 2: 1})) == 1


def test_membership():
    rq = ReadyQueue()
    rq.push(5)
    assert 5 in rq
    rq.pop(_lens({5: 1}))
    assert 5 not in rq


def test_unknown_discipline_rejected():
    with pytest.raises(ValueError):
        ReadyQueue("random")


@given(
    pushes=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=40)
)
def test_ready_queue_drains_exactly_members(pushes):
    """Property: popping drains each pushed oid exactly once."""
    rq = ReadyQueue()
    for oid in pushes:
        rq.push(oid)
    lengths = {oid: 1 for oid in pushes}
    out = []
    while rq:
        try:
            out.append(rq.pop(lambda o: lengths.get(o, 0)))
        except IndexError:
            break
    assert sorted(out) == sorted(set(pushes))
