"""End-to-end tests of the distributed coordinator with real workers.

Each test forks real worker processes, so sizes are kept small; the
heavyweight guarantees (cross-worker determinism, state equality with
the single-process reference, re-homing) each get exactly one focused
test and otherwise lean on the in-process units in test_dist_store.py.
"""

import pytest

from repro.core import MRTS
from repro.dist import DistRuntime, RecoveryFailed, ShardRecoveryPolicy
from repro.dist.wire import DistError
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing.workloads import StormActor, WorkloadSpec, run_storm
from repro.util.errors import ObjectNotFound

SPEC = WorkloadSpec(
    n_actors=8, payload_bytes=1024, initial_pulses=2, hops=3, fanout=2,
    grow_every=3, grow_bytes=256, seed=13,
)


def final_state(runtime, actors):
    out = []
    for ptr in actors:
        obj = runtime.get_object(ptr)
        out.append((obj.hits, obj.forwarded, len(obj.payload)))
    return out


def reference_state(spec):
    rt = MRTS(ClusterSpec(
        n_nodes=2, node=NodeSpec(cores=1, memory_bytes=1 << 20)
    ))
    return final_state(rt, run_storm(rt, spec))


def test_storm_matches_single_process_reference():
    with DistRuntime(2, l0_bytes=8 * 1024) as runtime:
        actors = run_storm(runtime, SPEC)
        assert final_state(runtime, actors) == reference_state(SPEC)
        stats = runtime.stats
    assert stats.delivered > 0
    assert stats.posts_routed > 0
    assert stats.bytes_replicated > 0


def test_same_seed_same_state_across_worker_counts():
    """The cross-process determinism satellite: 1 == 2 == 4 workers."""
    states = []
    for workers in (1, 2, 4):
        with DistRuntime(workers, l0_bytes=8 * 1024) as runtime:
            actors = run_storm(runtime, SPEC)
            states.append(final_state(runtime, actors))
    assert states[0] == states[1] == states[2]


def test_worker_kill_rehomes_without_rewind():
    with DistRuntime(3, l0_bytes=8 * 1024) as runtime:
        runtime.schedule_kill(1, after_acks=15)
        actors = run_storm(runtime, SPEC)
        assert runtime.stats.rehomes == 1
        assert runtime.stats.moved_objects > 0
        assert 1 not in runtime.ring.members
        assert final_state(runtime, actors) == reference_state(SPEC)
    assert runtime.recovery.events  # the policy logged the re-home


def test_handler_error_surfaces_as_dist_error():
    with DistRuntime(1) as runtime:
        ptr = runtime.create_object(StormActor, 64, 0, 3, 16)
        runtime.post(ptr, "no_such_handler")
        with pytest.raises(DistError, match="no_such_handler"):
            runtime.run()


def test_post_to_unknown_object_rejected_eagerly():
    from repro.core.mobile import MobilePointer

    with DistRuntime(1) as runtime:
        with pytest.raises(ObjectNotFound):
            runtime.post(MobilePointer(999, 0), "pulse")
        with pytest.raises(ObjectNotFound):
            runtime.get_object(MobilePointer(999, 0))


def test_recovery_budget_exhaustion_raises():
    with DistRuntime(2, recovery=ShardRecoveryPolicy(max_rehomes=0)) as rt:
        ptr = rt.create_object(StormActor, 64, 0, 3, 16)
        rt.run()
        rt.kill_worker(rt.directory[ptr.oid].home)
        rt.post(ptr, "pulse", 1, 1)
        with pytest.raises(RecoveryFailed):
            rt.run()


def test_events_relay_across_the_process_boundary():
    from repro.obs.events import EventBus

    bus = EventBus()
    sub = bus.subscribe()
    with DistRuntime(2, l0_bytes=4 * 1024, bus=bus) as runtime:
        run_storm(runtime, SPEC)
    times = [e.time for e in sub.events]
    assert times, "no events crossed the boundary"
    assert times == sorted(times), "merged stream is not time-ordered"
    kinds = {e.kind for e in sub.events}
    assert "handler" in kinds
    assert runtime.stats.events_merged == len(times)


def test_close_is_idempotent_and_collects_worker_stats():
    runtime = DistRuntime(2)
    ptr = runtime.create_object(StormActor, 64, 0, 3, 16)
    runtime.post(ptr, "pulse", 1, 1)
    runtime.run()
    stats = runtime.close()
    assert runtime.close() is stats
    assert stats.aggregate("delivered") >= 1
    assert all(not h.alive for h in runtime.workers)


def test_worker_count_must_be_positive():
    with pytest.raises(ValueError):
        DistRuntime(0)
