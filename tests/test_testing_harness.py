"""Unit tests for RuntimeHarness and the operational selftest."""

import pytest

from repro.core import MRTSConfig
from repro.testing import (
    FaultPlan,
    InvariantViolation,
    RuntimeHarness,
    WorkloadSpec,
    selftest,
)
from repro.testing.harness import FixedCostModel


def test_fixed_cost_model_charges_constant():
    model = FixedCostModel(0.25)
    assert model.handler_cost(None, "x", None) == 0.25
    with pytest.raises(ValueError):
        FixedCostModel(-1.0)


def test_fixed_cost_makes_virtual_time_deterministic():
    def total_time():
        h = RuntimeHarness(n_nodes=2, memory_bytes=1 << 20, cost=1e-3)
        h.run_storm(WorkloadSpec(n_actors=4, initial_pulses=1, hops=3, seed=1))
        return h.runtime.stats.total_time

    assert total_time() == total_time()


def test_fault_plan_is_cloned_per_node_with_offset_seeds():
    h = RuntimeHarness(
        n_nodes=3, fault_plan=FaultPlan(store_fail_rate=0.5, seed=10)
    )
    assert set(h.fault_backends) == {0, 1, 2}
    seeds = [b.plan.seed for b in h.fault_backends.values()]
    assert len(set(seeds)) == 3  # nodes fail independently, not in lockstep


def test_run_and_check_raises_on_corruption():
    h = RuntimeHarness(n_nodes=2, memory_bytes=1 << 20)
    h.run_storm(WorkloadSpec(n_actors=4, seed=2))
    h.runtime.directory.truth[31337] = 0  # sabotage
    with pytest.raises(InvariantViolation, match="31337"):
        h.run_and_check()


def test_report_counters_reflect_the_run():
    h = RuntimeHarness(n_nodes=2, memory_bytes=16 * 1024)
    h.run_storm(WorkloadSpec(n_actors=8, payload_bytes=3000, seed=4))
    report = h.report("pressure")
    assert report.ok and report.label == "pressure"
    assert report.messages > 0
    assert report.evictions > 0
    assert "pressure" in report.render() and "ok" in report.render()


def test_selftest_covers_the_full_config_matrix():
    reports = selftest(seed=3)
    n_schemes = len(MRTSConfig.VALID_SCHEMES)
    n_policies = len(MRTSConfig.VALID_DIRECTORY)
    assert len(reports) == n_schemes * n_policies
    assert all(r.ok for r in reports)
    assert any(r.evictions > 0 for r in reports)
