"""The indexed ReadyQueue against the linear-scan oracle.

PR 4 replaced the queue's O(n)-per-pop scan with a lazy min-heap of
cached scheduling keys.  The scan it replaced survives *verbatim* below
(:class:`OracleReadyQueue`, copied from the pre-index implementation) and
hypothesis drives both through random op sequences — push, boost,
residency flips, silent queue drains, pops — asserting the pop sequences
are identical.

The one contract the index relies on: between pops, a member's key can
only *worsen* silently (its message queue drains); every improvement
(new message, boost, residency change) arrives through a touching
mutation (``push`` / ``boost`` / ``note_resident``).  That is how the
runtime uses the queue, and the op generator below models exactly that.
"""

from collections import deque
from typing import Callable, Optional

from hypothesis import given, settings, strategies as st

from repro.core.control import ReadyQueue


class OracleReadyQueue:
    """The seed's linear-scan ReadyQueue, kept verbatim as the oracle."""

    def __init__(self, discipline: str = "fifo"):
        if discipline not in ("fifo", "busiest"):
            raise ValueError(f"unknown ready-queue discipline {discipline!r}")
        self.discipline = discipline
        self._fifo: deque[int] = deque()
        self._member: set[int] = set()
        self._boost: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._fifo)

    def __bool__(self) -> bool:
        return bool(self._fifo)

    def __contains__(self, oid: int) -> bool:
        return oid in self._member

    def push(self, oid: int) -> None:
        if oid not in self._member:
            self._member.add(oid)
            self._fifo.append(oid)

    def boost(self, oid: int, amount: float) -> None:
        self._boost[oid] = self._boost.get(oid, 0.0) + amount

    def pop(
        self,
        queue_len: Callable[[int], int],
        resident: Optional[Callable[[int], bool]] = None,
    ) -> int:
        while self._fifo:
            if self.discipline == "fifo" and not self._boost and resident is None:
                oid = self._fifo.popleft()
            else:
                best_idx = 0
                best_key = None
                for idx, cand in enumerate(self._fifo):
                    key = (
                        self._boost.get(cand, 0.0),
                        1 if (resident is not None and resident(cand)) else 0,
                        queue_len(cand) if self.discipline == "busiest" else 0,
                        -idx,
                    )
                    if best_key is None or key > best_key:
                        best_key = key
                        best_idx = idx
                oid = self._fifo[best_idx]
                del self._fifo[best_idx]
            self._member.discard(oid)
            self._boost.pop(oid, None)
            if queue_len(oid) > 0:
                return oid
        raise IndexError("pop from empty ready queue")


OIDS = st.integers(min_value=0, max_value=11)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), OIDS),
        st.tuples(st.just("boost"), OIDS,
                  st.floats(min_value=0.5, max_value=4.0, allow_nan=False)),
        st.tuples(st.just("resident"), OIDS, st.booleans()),
        st.tuples(st.just("drain"), OIDS),
        st.tuples(st.just("pop")),
    ),
    min_size=1,
    max_size=60,
)


def _drive(discipline: str, use_resident: bool, ops) -> list:
    """Run the same op sequence through both queues; return pop results."""
    indexed = ReadyQueue(discipline)
    oracle = OracleReadyQueue(discipline)
    qlen: dict[int, int] = {}
    resident: dict[int, bool] = {}
    res_fn = (lambda oid: resident.get(oid, False)) if use_resident else None
    results = []
    for op in ops:
        kind = op[0]
        if kind == "push":
            oid = op[1]
            qlen[oid] = qlen.get(oid, 0) + 1
            indexed.push(oid)
            oracle.push(oid)
        elif kind == "boost":
            _, oid, amount = op
            indexed.boost(oid, amount)
            oracle.boost(oid, amount)
        elif kind == "resident":
            _, oid, flag = op
            resident[oid] = flag
            indexed.note_resident(oid, flag)
            # The oracle reads residency live at pop; no call needed.
        elif kind == "drain":
            # A queue drains silently (its key worsens without a touch).
            oid = op[1]
            qlen[oid] = max(0, qlen.get(oid, 0) - 1)
        elif kind == "pop":
            assert bool(indexed) == bool(oracle)
            if not oracle:
                continue
            _pop_both(indexed, oracle, qlen, res_fn, results)
    # Drain both to exhaustion: the full service order must agree.
    while oracle:
        assert indexed
        _pop_both(indexed, oracle, qlen, res_fn, results)
    assert not indexed
    return results


def _pop_both(indexed, oracle, qlen, res_fn, results) -> None:
    # Both may exhaust mid-pop (every remaining member's queue drained);
    # the implementations must agree on that too.
    try:
        got = indexed.pop(lambda o: qlen.get(o, 0), res_fn)
    except IndexError:
        got = IndexError
    try:
        want = oracle.pop(lambda o: qlen.get(o, 0), res_fn)
    except IndexError:
        want = IndexError
    results.append((got, want))
    if got is not IndexError:
        # Serving the object consumes its whole queue (the runtime drains
        # messages for the popped object before re-pushing).
        qlen[got] = 0


@settings(max_examples=150, deadline=None)
@given(ops=OPS, use_resident=st.booleans())
def test_fifo_matches_oracle(ops, use_resident):
    for got, want in _drive("fifo", use_resident, ops):
        assert got == want


@settings(max_examples=150, deadline=None)
@given(ops=OPS, use_resident=st.booleans())
def test_busiest_matches_oracle(ops, use_resident):
    for got, want in _drive("busiest", use_resident, ops):
        assert got == want


def test_membership_and_len_track_entries():
    q = ReadyQueue("fifo")
    q.push(3)
    q.push(3)  # idempotent
    q.push(7)
    assert len(q) == 2 and 3 in q and 7 in q and 5 not in q
    got = q.pop(lambda o: 1)
    assert got == 3
    assert len(q) == 1 and 3 not in q


def test_snapshot_is_fifo_arrival_order():
    q = ReadyQueue("busiest")
    for oid in (9, 2, 5):
        q.push(oid)
    q.boost(5, 10.0)  # scheduling hints must not reorder the snapshot
    assert q.snapshot() == [9, 2, 5]
    q.pop(lambda o: 1)  # serves 5 (boosted)
    assert q.snapshot() == [9, 2]


def test_snapshot_is_read_only_view():
    q = ReadyQueue("fifo")
    q.push(1)
    snap = q.snapshot()
    snap.append(99)
    assert q.snapshot() == [1]
