"""The indexed ReadyQueue against the linear-scan oracle.

PR 4 replaced the queue's O(n)-per-pop scan with a lazy min-heap of
cached scheduling keys.  The scan it replaced survives below
(:class:`OracleReadyQueue`, copied from the pre-index implementation,
extended in lockstep with PR 9's speculation dimension) and hypothesis
drives both through random op sequences — real and speculative pushes,
boost, residency flips, silent queue drains, pops — asserting the pop
sequences are identical.

The one contract the index relies on: between pops, a member's key can
only *worsen* silently (its message queue drains, or real work drains
away leaving a speculation-only queue); every improvement (new message,
boost, residency change) arrives through a touching mutation (``push`` /
``boost`` / ``note_resident``).  That is how the runtime uses the queue,
and the op generator below models exactly that: per-object real and
speculative message counts mirror the node's ``spec_only`` predicate,
with drains consuming real messages first so silent changes only ever
demote.
"""

from collections import deque
from typing import Callable, Optional

from hypothesis import given, settings, strategies as st

from repro.core.control import ReadyQueue


class OracleReadyQueue:
    """The seed's linear-scan ReadyQueue, kept verbatim as the oracle."""

    def __init__(self, discipline: str = "fifo"):
        if discipline not in ("fifo", "busiest"):
            raise ValueError(f"unknown ready-queue discipline {discipline!r}")
        self.discipline = discipline
        self._fifo: deque[int] = deque()
        self._member: set[int] = set()
        self._boost: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._fifo)

    def __bool__(self) -> bool:
        return bool(self._fifo)

    def __contains__(self, oid: int) -> bool:
        return oid in self._member

    def push(self, oid: int) -> None:
        if oid not in self._member:
            self._member.add(oid)
            self._fifo.append(oid)

    def boost(self, oid: int, amount: float) -> None:
        self._boost[oid] = self._boost.get(oid, 0.0) + amount

    def pop(
        self,
        queue_len: Callable[[int], int],
        resident: Optional[Callable[[int], bool]] = None,
        spec_only: Optional[Callable[[int], bool]] = None,
    ) -> int:
        while self._fifo:
            if (self.discipline == "fifo" and not self._boost
                    and resident is None and spec_only is None):
                oid = self._fifo.popleft()
            else:
                best_idx = 0
                best_key = None
                for idx, cand in enumerate(self._fifo):
                    in_core = resident is not None and resident(cand)
                    if spec_only is not None and not in_core:
                        # Speculation mode: non-resident objects are
                        # served deepest-queue-first (demand loads
                        # amortize over more messages).
                        batch = queue_len(cand)
                    else:
                        batch = (
                            queue_len(cand)
                            if self.discipline == "busiest" else 0
                        )
                    key = (
                        self._boost.get(cand, 0.0),
                        0 if (spec_only is not None and spec_only(cand))
                        else 1,
                        1 if in_core else 0,
                        batch,
                        -idx,
                    )
                    if best_key is None or key > best_key:
                        best_key = key
                        best_idx = idx
                oid = self._fifo[best_idx]
                del self._fifo[best_idx]
            self._member.discard(oid)
            self._boost.pop(oid, None)
            if queue_len(oid) > 0:
                return oid
        raise IndexError("pop from empty ready queue")


OIDS = st.integers(min_value=0, max_value=11)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), OIDS),
        st.tuples(st.just("pushspec"), OIDS),
        st.tuples(st.just("boost"), OIDS,
                  st.floats(min_value=0.5, max_value=4.0, allow_nan=False)),
        st.tuples(st.just("resident"), OIDS, st.booleans()),
        st.tuples(st.just("drain"), OIDS),
        st.tuples(st.just("pop")),
    ),
    min_size=1,
    max_size=60,
)


def _drive(discipline: str, use_resident: bool, use_spec: bool, ops) -> list:
    """Run the same op sequence through both queues; return pop results."""
    indexed = ReadyQueue(discipline)
    oracle = OracleReadyQueue(discipline)
    # Per-object message mix, mirroring the node's queue contents: the
    # spec_only predicate is "speculative messages and nothing else".
    real: dict[int, int] = {}
    spec: dict[int, int] = {}
    resident: dict[int, bool] = {}

    def qlen(oid: int) -> int:
        return real.get(oid, 0) + spec.get(oid, 0)

    res_fn = (lambda oid: resident.get(oid, False)) if use_resident else None
    spec_fn = (
        (lambda oid: real.get(oid, 0) == 0 and spec.get(oid, 0) > 0)
        if use_spec else None
    )
    results = []
    for op in ops:
        kind = op[0]
        if kind in ("push", "pushspec"):
            oid = op[1]
            counts = spec if kind == "pushspec" else real
            counts[oid] = counts.get(oid, 0) + 1
            indexed.push(oid)
            oracle.push(oid)
        elif kind == "boost":
            _, oid, amount = op
            indexed.boost(oid, amount)
            oracle.boost(oid, amount)
        elif kind == "resident":
            _, oid, flag = op
            resident[oid] = flag
            indexed.note_resident(oid, flag)
            # The oracle reads residency live at pop; no call needed.
        elif kind == "drain":
            # A queue drains silently: the key worsens without a touch.
            # Real messages drain first, so the only silent spec_only
            # transition is False -> True (real work drained away) —
            # a demotion, exactly what the index contract allows.
            oid = op[1]
            if real.get(oid, 0) > 0:
                real[oid] -= 1
            elif spec.get(oid, 0) > 0:
                spec[oid] -= 1
        elif kind == "pop":
            # Memberships may transiently differ on *empty-queue* entries
            # (the lazy index discards them on a later pop than the eager
            # scan), so compare pop outcomes, not membership: both must
            # return the same oid or both must report exhaustion.
            if not (indexed or oracle):
                continue
            _pop_both(indexed, oracle, qlen, res_fn, spec_fn,
                      real, spec, results)
    # Drain both to exhaustion: the full service order must agree.
    while indexed or oracle:
        _pop_both(indexed, oracle, qlen, res_fn, spec_fn, real, spec, results)
        if results[-1] == (IndexError, IndexError):
            break
    return results


def _pop_both(indexed, oracle, qlen, res_fn, spec_fn, real, spec,
              results) -> None:
    # Both may exhaust mid-pop (every remaining member's queue drained);
    # the implementations must agree on that too.
    try:
        got = indexed.pop(qlen, res_fn, spec_fn)
    except IndexError:
        got = IndexError
    try:
        want = oracle.pop(qlen, res_fn, spec_fn)
    except IndexError:
        want = IndexError
    results.append((got, want))
    if got is not IndexError:
        # Serving the object consumes its whole queue (the runtime drains
        # messages for the popped object before re-pushing).
        real[got] = 0
        spec[got] = 0


@settings(max_examples=150, deadline=None)
@given(ops=OPS, use_resident=st.booleans(), use_spec=st.booleans())
def test_fifo_matches_oracle(ops, use_resident, use_spec):
    for got, want in _drive("fifo", use_resident, use_spec, ops):
        assert got == want


@settings(max_examples=150, deadline=None)
@given(ops=OPS, use_resident=st.booleans(), use_spec=st.booleans())
def test_busiest_matches_oracle(ops, use_resident, use_spec):
    for got, want in _drive("busiest", use_resident, use_spec, ops):
        assert got == want


def test_spec_only_objects_serve_after_real_work():
    """Speculation is stall filler: all-speculative queues rank last."""
    q = ReadyQueue("fifo")
    q.push(1)  # arrives first, but holds only speculative messages
    q.push(2)
    spec = {1: True, 2: False}
    got = q.pop(lambda o: 1, None, lambda o: spec[o])
    assert got == 2


def test_spec_mode_prefers_deepest_nonresident_queue():
    """Non-resident objects pay a demand load: deepest queue amortizes
    it best, so thin queues defer while speculation mode is on."""
    q = ReadyQueue("fifo")
    q.push(1)
    q.push(2)
    depth = {1: 1, 2: 5}
    got = q.pop(lambda o: depth[o], lambda o: False, lambda o: False)
    assert got == 2


def test_membership_and_len_track_entries():
    q = ReadyQueue("fifo")
    q.push(3)
    q.push(3)  # idempotent
    q.push(7)
    assert len(q) == 2 and 3 in q and 7 in q and 5 not in q
    got = q.pop(lambda o: 1)
    assert got == 3
    assert len(q) == 1 and 3 not in q


def test_snapshot_is_fifo_arrival_order():
    q = ReadyQueue("busiest")
    for oid in (9, 2, 5):
        q.push(oid)
    q.boost(5, 10.0)  # scheduling hints must not reorder the snapshot
    assert q.snapshot() == [9, 2, 5]
    q.pop(lambda o: 1)  # serves 5 (boosted)
    assert q.snapshot() == [9, 2]


def test_snapshot_is_read_only_view():
    q = ReadyQueue("fifo")
    q.push(1)
    snap = q.snapshot()
    snap.append(99)
    assert q.snapshot() == [1]
