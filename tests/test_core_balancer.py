"""Backfill unit tests for the load-balancing module.

``tests/test_core_extensions.py`` covers the headline behaviors (spread,
makespan win, locked objects); these tests pin the decision mechanics:
the load scalar, migration budgets, the no-flip guard, slack and ring
topology in the diffusion policy, and the report arithmetic.
"""

import pytest

from repro.core import MobileObject, MRTS, handler
from repro.core.balancer import (
    DiffusionBalancer,
    ElasticBalancer,
    GreedyBalancer,
    NodeLoad,
    _movable_objects,
    measure_load,
)
from repro.core.config import MRTSConfig
from repro.obs.events import LoadEvent, QueueDepthEvent
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class Worker(MobileObject):
    def __init__(self, pointer):
        super().__init__(pointer)
        self.done = 0

    @handler
    def work(self, ctx):
        self.done += 1
        ctx.charge(0.01)


def cluster(n=4, memory=1 << 24):
    return ClusterSpec(n_nodes=n, node=NodeSpec(cores=1, memory_bytes=memory))


def skewed(n_nodes=4, n_objects=8, messages_each=5, hot_node=0):
    rt = MRTS(cluster(n=n_nodes))
    ptrs = [rt.create_object(Worker, node=hot_node) for _ in range(n_objects)]
    for p in ptrs:
        for _ in range(messages_each):
            rt.post(p, "work")
    return rt, ptrs


# ---------------------------------------------------------------- measurement
def test_node_load_scalar_pending_dominates():
    busy = NodeLoad(rank=0, pending_messages=3, n_objects=0, memory_used=0)
    crowded = NodeLoad(rank=1, pending_messages=2, n_objects=90,
                       memory_used=1 << 30)
    assert busy.load > crowded.load


def test_node_load_object_count_tiebreaks():
    a = NodeLoad(rank=0, pending_messages=2, n_objects=5, memory_used=0)
    b = NodeLoad(rank=1, pending_messages=2, n_objects=3, memory_used=0)
    assert a.load > b.load


def test_measure_load_reports_queue_and_memory():
    rt, ptrs = skewed(n_nodes=2, n_objects=3, messages_each=4)
    loads = measure_load(rt)
    assert loads[0].pending_messages == 12
    assert loads[0].n_objects == 3
    assert loads[0].memory_used > 0
    assert loads[1].pending_messages == 0
    assert loads[1].n_objects == 0
    assert [l.rank for l in loads] == [0, 1]


# -------------------------------------------------------------------- greedy
def test_greedy_respects_migration_budget():
    rt, _ = skewed(n_objects=12, messages_each=5)
    report = GreedyBalancer(threshold=1.0 + 1e-9, max_migrations=2).rebalance(rt)
    assert report.n_migrations == 2


def test_greedy_stops_below_threshold():
    rt, _ = skewed()
    report = GreedyBalancer(threshold=10.0).rebalance(rt)
    # Max/mean imbalance of an all-on-one-node app over 4 nodes is 4;
    # a threshold of 10 declares that acceptable.
    assert report.n_migrations == 0
    assert report.planned_imbalance == report.before_imbalance


def test_greedy_never_flips_the_imbalance():
    """One hot object: moving it would make the destination the new max,
    so the planner must leave it alone."""
    rt = MRTS(cluster(n=2))
    p = rt.create_object(Worker, node=0)
    for _ in range(10):
        rt.post(p, "work")
    report = GreedyBalancer(threshold=1.25).rebalance(rt)
    assert report.n_migrations == 0


def test_greedy_skips_objects_with_handlers_in_flight():
    rt, ptrs = skewed(n_nodes=2)
    for p in ptrs:
        rt.nodes[0].locals[p.oid].in_flight = 1
    report = GreedyBalancer().rebalance(rt)
    assert report.n_migrations == 0
    for p in ptrs:
        rt.nodes[0].locals[p.oid].in_flight = 0


def test_greedy_migration_report_is_consistent():
    rt, ptrs = skewed()
    report = GreedyBalancer(threshold=1.25).rebalance(rt)
    assert report.n_migrations == len(report.migrations) > 0
    assert report.planned_imbalance < report.before_imbalance
    for oid, src, dst in report.migrations:
        assert src == 0 and dst != 0
        assert oid in {p.oid for p in ptrs}
    # Each object moved at most once per rebalance.
    moved = [oid for oid, _, _ in report.migrations]
    assert len(moved) == len(set(moved))


def test_greedy_work_is_conserved_across_migrations():
    rt, ptrs = skewed(n_objects=12, messages_each=5)
    GreedyBalancer(threshold=1.25).rebalance(rt)
    rt.run()
    assert all(rt.get_object(p).done == 5 for p in ptrs)


# ----------------------------------------------------------------- diffusion
def test_diffusion_respects_per_node_budget():
    rt, _ = skewed(n_objects=12, messages_each=5)
    report = DiffusionBalancer(slack=0.5, max_per_node=2).rebalance(rt)
    per_src = {}
    for _, src, _ in report.migrations:
        per_src[src] = per_src.get(src, 0) + 1
    assert all(n <= 2 for n in per_src.values())
    assert report.n_migrations >= 1


def test_diffusion_slack_tolerates_small_imbalance():
    rt, _ = skewed(n_objects=1, messages_each=2)  # load gap ~= 2
    report = DiffusionBalancer(slack=5.0).rebalance(rt)
    assert report.n_migrations == 0


def test_diffusion_ring_wraps_around():
    """The hot node's ring neighbors include the last node; excess from
    node 0 may flow to n-1 as well as 1, never farther."""
    rt, _ = skewed(n_nodes=5, n_objects=10, messages_each=5)
    report = DiffusionBalancer(slack=1.0, max_per_node=8).rebalance(rt)
    assert report.n_migrations > 0
    for _, src, dst in report.migrations:
        assert src == 0
        assert dst in (1, 4)


def test_diffusion_work_is_conserved_across_migrations():
    rt, ptrs = skewed(n_objects=10, messages_each=4)
    DiffusionBalancer(slack=1.0).rebalance(rt)
    rt.run()
    assert all(rt.get_object(p).done == 4 for p in ptrs)


def test_diffusion_on_balanced_cluster_is_noop():
    rt = MRTS(cluster(n=2))
    for node in (0, 1):
        p = rt.create_object(Worker, node=node)
        rt.post(p, "work")
    report = DiffusionBalancer(slack=0.5).rebalance(rt)
    assert report.n_migrations == 0


# ------------------------------------------------------------------- elastic
def test_elastic_parameter_validation():
    rt = MRTS(cluster(n=2))
    for kwargs in (
        dict(threshold=0.0),
        dict(alpha=0.0),
        dict(alpha=1.5),
        dict(cooldown_s=-1.0),
    ):
        with pytest.raises(ValueError):
            ElasticBalancer(rt, **kwargs)


def test_elastic_ewma_and_residency_tracking():
    rt = MRTS(cluster(n=2), config=MRTSConfig(elastic_balance=True))
    bal = rt.balancer
    assert bal is not None
    bal._on_event(QueueDepthEvent(0.0, 0, 1, 10))
    assert bal.depth_ewma[0] == pytest.approx(2.0)   # 0 + 0.2 * 10
    bal._on_event(QueueDepthEvent(0.0, 0, 1, 10))
    assert bal.depth_ewma[0] == pytest.approx(3.6)   # 2 + 0.2 * 8
    bal._on_event(LoadEvent(0.0, 1, 5, 100, False, 4096))
    assert bal.residency[1] == 4096
    assert bal.depth_ewma[1] == 0.0  # load events never move the EWMA


def test_elastic_migrates_off_hot_node_and_conserves_work():
    rt = MRTS(cluster(n=2), config=MRTSConfig(elastic_balance=True))
    ptrs = [rt.create_object(Worker, node=0) for _ in range(8)]
    for p in ptrs:
        for _ in range(6):
            rt.post(p, "work")
    rt.run()
    assert rt.balancer.migrations >= 1
    assert all(rt.get_object(p).done == 6 for p in ptrs)


def test_elastic_threshold_prevents_migration():
    rt = MRTS(
        cluster(n=2), config=MRTSConfig(elastic_balance=True),
    )
    rt.balancer.threshold = 1e9
    ptrs = [rt.create_object(Worker, node=0) for _ in range(6)]
    for p in ptrs:
        for _ in range(4):
            rt.post(p, "work")
    rt.run()
    assert rt.balancer.migrations == 0


def test_elastic_migration_budget_is_respected():
    rt = MRTS(cluster(n=2), config=MRTSConfig(elastic_balance=True))
    rt.balancer.max_migrations = 1
    rt.balancer.cooldown_s = 0.0
    ptrs = [rt.create_object(Worker, node=0) for _ in range(10)]
    for p in ptrs:
        for _ in range(8):
            rt.post(p, "work")
    rt.run()
    assert rt.balancer.migrations <= 1


def test_movable_objects_skip_pending_speculation():
    rt = MRTS(cluster(n=2), config=MRTSConfig(speculation=True))
    p = rt.create_object(Worker, node=0)
    assert _movable_objects(rt, 0) == [p.oid]
    rt.speculation.pending[p.oid] = object()  # membership is the check
    assert _movable_objects(rt, 0) == []
    del rt.speculation.pending[p.oid]
    assert _movable_objects(rt, 0) == [p.oid]


# ------------------------------------------------------------------- reports
def test_rebalance_after_run_is_stable():
    """Migrations execute on the next run(); a rebalance called at the
    following phase boundary finds nothing left to move (no ping-pong)."""
    rt, _ = skewed(n_objects=12, messages_each=5)
    first = GreedyBalancer(threshold=1.25).rebalance(rt)
    rt.run()
    second = GreedyBalancer(threshold=1.25).rebalance(rt)
    assert first.n_migrations > 0
    assert second.n_migrations == 0


def test_parameter_validation():
    with pytest.raises(ValueError):
        GreedyBalancer(threshold=0.99)
    with pytest.raises(ValueError):
        DiffusionBalancer(slack=-0.1)
