"""Tests for vectorized geometric kernels vs the scalar exact predicates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    circumcenter,
    circumradius_sq,
    dist_sq,
    orient2d_exact,
)
from repro.geometry.batch import (
    bad_triangle_mask,
    circumcenter_batch,
    circumradius_sq_batch,
    orient2d_batch,
    shortest_edge_sq_batch,
)

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
pt = st.tuples(finite, finite)


def _tri_arrays(tris):
    a = np.array([t[0] for t in tris])
    b = np.array([t[1] for t in tris])
    c = np.array([t[2] for t in tris])
    return a, b, c


def test_orient2d_batch_signs():
    tris = [
        ((0, 0), (1, 0), (0, 1)),   # ccw
        ((0, 0), (0, 1), (1, 0)),   # cw
        ((0, 0), (1, 1), (2, 2)),   # collinear
    ]
    det, uncertain = orient2d_batch(*_tri_arrays(tris))
    assert det[0] > 0 and det[1] < 0
    assert uncertain[2]  # collinear: filter cannot certify


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(pt, pt, pt), min_size=1, max_size=20))
def test_orient2d_batch_certified_signs_match_exact(tris):
    """Where the filter is certain, the sign equals the exact predicate."""
    det, uncertain = orient2d_batch(*_tri_arrays(tris))
    for k, (a, b, c) in enumerate(tris):
        if not uncertain[k]:
            assert np.sign(det[k]) == orient2d_exact(a, b, c)


def test_batch_shape_validation():
    with pytest.raises(ValueError):
        orient2d_batch(np.zeros((3,)), np.zeros((3, 2)), np.zeros((3, 2)))


def test_circumcenter_batch_matches_scalar():
    tris = [
        ((0.0, 0.0), (4.0, 0.0), (0.0, 3.0)),
        ((1.0, 1.0), (2.0, 1.0), (1.5, 2.0)),
    ]
    cc = circumcenter_batch(*_tri_arrays(tris))
    for k, (a, b, c) in enumerate(tris):
        expected = circumcenter(a, b, c)
        assert cc[k, 0] == pytest.approx(expected[0])
        assert cc[k, 1] == pytest.approx(expected[1])


def test_circumcenter_batch_degenerate_nan():
    cc = circumcenter_batch(
        np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]])
    )
    assert np.isnan(cc).all()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(pt, pt, pt), min_size=1, max_size=15))
def test_circumradius_batch_matches_scalar(tris):
    a, b, c = _tri_arrays(tris)
    r_sq = circumradius_sq_batch(a, b, c)
    for k, (pa, pb, pc) in enumerate(tris):
        longest = max(dist_sq(pa, pb), dist_sq(pb, pc), dist_sq(pc, pa))
        try:
            expected = circumradius_sq(pa, pb, pc)
        except ZeroDivisionError:
            assert not np.isfinite(r_sq[k])
            continue
        if not np.isfinite(r_sq[k]):
            # The batch kernel pivots at c, so a triangle whose doubled
            # area is at cancellation scale can round d to exactly 0 and
            # come back NaN even though the scalar path (different pivot)
            # survives.  Accept NaN only for such degenerate slivers.
            area2 = max(
                abs((pb[0] - pa[0]) * (pc[1] - pa[1])
                    - (pb[1] - pa[1]) * (pc[0] - pa[0])),
                abs((pc[0] - pb[0]) * (pa[1] - pb[1])
                    - (pc[1] - pb[1]) * (pa[0] - pb[0])),
                abs((pa[0] - pc[0]) * (pb[1] - pc[1])
                    - (pa[1] - pc[1]) * (pb[0] - pc[0])),
            )
            assert area2 <= 1e-9 * longest
            continue
        if not math.isfinite(expected) or longest == 0:
            continue
        if expected > 1e4 * longest or expected > 1e12:
            continue  # needle triangle: both results are noise
        assert r_sq[k] == pytest.approx(expected, rel=1e-6, abs=1e-9)


def test_shortest_edge_batch():
    tris = [((0, 0), (3, 0), (0, 4))]
    short = shortest_edge_sq_batch(*_tri_arrays(tris))
    assert short[0] == pytest.approx(9.0)


def test_bad_triangle_mask_quality():
    # A skinny triangle (bad ratio) and an equilateral (good).
    h = math.sqrt(3) / 2
    tris = [
        ((0.0, 0.0), (1.0, 0.0), (0.5, 0.01)),
        ((0.0, 0.0), (1.0, 0.0), (0.5, h)),
    ]
    mask = bad_triangle_mask(*_tri_arrays(tris))
    assert mask.tolist() == [True, False]


def test_bad_triangle_mask_sizing():
    h = math.sqrt(3) / 2
    tris = [((0.0, 0.0), (1.0, 0.0), (0.5, h))]  # circumradius ~0.577
    a, b, c = _tri_arrays(tris)
    centers = circumcenter_batch(a, b, c)
    small_h = np.full(1, 0.1)
    big_h = np.full(1, 10.0)
    assert bad_triangle_mask(a, b, c, h_at_center=small_h).tolist() == [True]
    assert bad_triangle_mask(a, b, c, h_at_center=big_h).tolist() == [False]
    assert centers.shape == (1, 2)


def test_bad_triangle_mask_min_length_protects():
    tris = [((0.0, 0.0), (1.0, 0.0), (0.5, 0.01))]  # bad but tiny edges? no:
    a, b, c = _tri_arrays(tris)
    assert bad_triangle_mask(a, b, c, min_length=2.0).tolist() == [False]


def test_bad_triangle_mask_degenerate_never_bad():
    tris = [((0.0, 0.0), (1.0, 1.0), (2.0, 2.0))]
    assert bad_triangle_mask(*_tri_arrays(tris)).tolist() == [False]


def test_batch_agrees_with_mesh_scan():
    """The vectorized mask finds the same bad set as the scalar refiner."""
    from repro.geometry import unit_square
    from repro.mesh import find_bad_triangles, triangulate_pslg, refine
    from repro.mesh.sizing import uniform_sizing

    tri = triangulate_pslg(unit_square())
    refine(tri, sizing=uniform_sizing(0.3))
    tris = list(tri.triangles())
    coords = [tri.coords(t) for t in tris]
    a, b, c = _tri_arrays(coords)
    centers = circumcenter_batch(a, b, c)
    sizing = uniform_sizing(0.15)  # tighter than the mesh satisfies
    h = np.array([sizing((x, y)) for x, y in centers])
    mask = bad_triangle_mask(a, b, c, h_at_center=h)
    scalar_bad = set(find_bad_triangles(tri, sizing=sizing))
    batch_bad = {tris[k] for k in range(len(tris)) if mask[k]}
    assert batch_bad == scalar_bad
