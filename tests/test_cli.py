"""Tests for the CLI entry point."""

import pytest

from repro.cli import main
from repro.evalsim.experiments import ALL_EXPERIMENTS


def test_list_flag(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_EXPERIMENTS:
        assert name in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_runs_cheap_experiment(capsys):
    assert main(["fig1", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "regenerated" in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_bad_scale_errors():
    with pytest.raises(SystemExit):
        main(["fig1", "--scale", "0"])
    with pytest.raises(SystemExit):
        main(["fig1", "--scale", "2"])


def test_multiple_experiments(capsys):
    assert main(["intro_turnaround", "ablation_directory", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "intro_turnaround" in out and "ablation_directory" in out


def test_selftest_listed(capsys):
    main(["--list"])
    assert "selftest" in capsys.readouterr().out


def test_selftest_passes(capsys):
    assert main(["selftest", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "selftest PASS" in out
    assert "storm[lru/lazy]" in out
    # One report line per scheme x directory-policy combination.
    assert out.count("storm[") == 15


def test_trace_and_report_listed(capsys):
    main(["--list"])
    out = capsys.readouterr().out
    assert "trace <workload>" in out
    assert "report <old.json> <new.json>" in out


def test_trace_storm_writes_perfetto_json(capsys, tmp_path):
    import json

    out_path = tmp_path / "trace.json"
    assert main(["trace", "storm", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "trace PASS" in out
    assert "overlap from events" in out
    doc = json.loads(out_path.read_text())
    rows = doc["traceEvents"]
    assert any(r["ph"] == "X" for r in rows)
    assert any(
        r["ph"] == "M" and r["name"] == "process_name" for r in rows
    )


def test_trace_unknown_workload_errors():
    with pytest.raises(SystemExit):
        main(["trace", "nope"])


def test_trace_missing_workload_errors():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_report_diffs_two_documents(capsys, tmp_path):
    import json

    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps({"w": {"bytes": 100}}))
    new.write_text(json.dumps({"w": {"bytes": 150}}))
    assert main(["report", str(old), str(new)]) == 0
    out = capsys.readouterr().out
    assert "w.bytes" in out
    assert "+50.0%" in out


def test_report_missing_file_fails(capsys, tmp_path):
    import json

    ok = tmp_path / "ok.json"
    ok.write_text(json.dumps({}))
    assert main(["report", str(ok), str(tmp_path / "absent.json")]) == 1
    assert "cannot read" in capsys.readouterr().out


def test_report_wrong_arity_errors():
    with pytest.raises(SystemExit):
        main(["report", "only-one.json"])


def test_selftest_reports_failures(capsys, monkeypatch):
    """A selftest that finds violations must exit non-zero and say why."""
    import repro.cli as cli_mod
    from repro.testing import HarnessReport

    def fake_selftest(seed=0):
        return [
            HarnessReport("storm[lru/lazy]", 0.0, 1, 0, 0,
                          violations=["node 0: memory_used off by 7"]),
            HarnessReport("storm[lfu/lazy]", 0.0, 1, 0, 0),
        ]

    import repro.testing

    monkeypatch.setattr(repro.testing, "selftest", fake_selftest)
    assert main(["selftest"]) == 1
    out = capsys.readouterr().out
    assert "FAIL (1/2)" in out
    assert "memory_used off by 7" in out


def test_dist_backend_listed(capsys):
    main(["--list"])
    out = capsys.readouterr().out
    assert "--backend dist" in out


def test_perf_dist_backend_end_to_end(capsys, tmp_path):
    """The acceptance gate: dist_storm on >= 2 real workers, state-equal
    to the reference, merged trace written, report merged."""
    import json

    report = tmp_path / "bench.json"
    trace = tmp_path / "trace.json"
    assert main([
        "perf", "--backend", "dist", "--workers", "2", "--scale", "0.5",
        "--output", str(report), "--trace-out", str(trace),
    ]) == 0
    out = capsys.readouterr().out
    assert "dist_storm" in out
    assert "PASS" in out
    doc = json.loads(report.read_text())
    metrics = doc["workloads"]["dist_storm"]
    assert metrics["workers"] == 2
    assert metrics["state_equal"] is True
    events = json.loads(trace.read_text())["traceEvents"]
    assert events, "empty cross-process trace"
    assert {e["pid"] for e in events if "pid" in e}


def test_perf_dist_rejects_bad_worker_count():
    with pytest.raises(SystemExit):
        main(["perf", "--backend", "dist", "--workers", "0"])


def test_chaos_dist_backend_runs_the_matrix(capsys):
    assert main(["chaos", "--backend", "dist", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "dist-worker-kill" in out
    assert "dist-wire-chaos" in out
    assert "PASS" in out


def test_serve_listed(capsys):
    main(["--list"])
    out = capsys.readouterr().out
    assert "serve" in out


@pytest.mark.slow
def test_serve_storm_end_to_end(capsys, tmp_path):
    """The service throughput gate: storm through real sockets, metrics
    merged into a report, per-job-lane Perfetto trace written."""
    import json

    report = tmp_path / "bench.json"
    trace = tmp_path / "trace.json"
    assert main([
        "serve", "--storm", "--seed", "0",
        "--output", str(report), "--trace-out", str(trace),
    ]) == 0
    out = capsys.readouterr().out
    assert "service_storm" in out
    assert "PASS" in out
    doc = json.loads(report.read_text())
    metrics = doc["workloads"]["service_storm"]
    assert metrics["all_finished"] is True
    assert metrics["invariant_violations"] == 0
    assert metrics["jobs_per_sec"] > 0
    events = json.loads(trace.read_text())["traceEvents"]
    lanes = {e["args"]["name"] for e in events
             if e.get("name") == "thread_name" and e["pid"] == 10_000}
    assert any(name.startswith("job j") for name in lanes)


@pytest.mark.slow
def test_serve_storm_check_gates_against_baseline(capsys, tmp_path):
    """--check against a just-written baseline passes (determinism)."""
    report = tmp_path / "bench.json"
    assert main(["serve", "--storm", "--output", str(report)]) == 0
    assert main(["serve", "--storm", "--check",
                 "--output", str(report)]) == 0
    out = capsys.readouterr().out
    assert "serve --storm --check PASS" in out


def test_serve_storm_check_without_baseline_fails(capsys, tmp_path):
    missing = tmp_path / "nope.json"
    assert main(["serve", "--storm", "--check", "--scale", "0.5",
                 "--output", str(missing)]) == 1
    assert "no baseline" in capsys.readouterr().out


@pytest.mark.slow
def test_serve_chaos_cell_in_cli_matrix(capsys):
    assert main(["chaos", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "serve-kill-midjob" in out
    assert "PASS" in out
