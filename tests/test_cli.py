"""Tests for the CLI entry point."""

import pytest

from repro.cli import main
from repro.evalsim.experiments import ALL_EXPERIMENTS


def test_list_flag(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_EXPERIMENTS:
        assert name in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_runs_cheap_experiment(capsys):
    assert main(["fig1", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "regenerated" in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_bad_scale_errors():
    with pytest.raises(SystemExit):
        main(["fig1", "--scale", "0"])
    with pytest.raises(SystemExit):
        main(["fig1", "--scale", "2"])


def test_multiple_experiments(capsys):
    assert main(["intro_turnaround", "ablation_directory", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "intro_turnaround" in out and "ablation_directory" in out
