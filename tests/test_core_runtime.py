"""Integration tests for the MRTS runtime: messaging, out-of-core, migration,
multicast, directory routing, termination, failure modes."""

import pytest

from repro.core import (
    CostModel,
    FileBackend,
    MemoryBackend,
    MobileObject,
    MRTS,
    MRTSConfig,
    handler,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.util.errors import MRTSError, OutOfMemory


class Counter(MobileObject):
    def __init__(self, ptr, start=0):
        super().__init__(ptr)
        self.value = start
        self.seen_nodes = []

    @handler
    def bump(self, ctx, amount=1, reply_to=None, limit=None):
        self.value += amount
        self.seen_nodes.append(ctx.node)
        if reply_to is not None and (limit is None or self.value < limit):
            ctx.post(reply_to, "bump", amount, reply_to=self.pointer, limit=limit)


class Blob(MobileObject):
    def __init__(self, ptr, size=1000):
        super().__init__(ptr)
        self.payload = bytes(size)
        self.touches = 0

    @handler
    def touch(self, ctx):
        self.touches += 1

    @handler
    def grow(self, ctx, extra):
        self.payload += bytes(extra)


def small_cluster(n_nodes=2, cores=1, memory=1 << 22):
    return ClusterSpec(
        n_nodes=n_nodes, node=NodeSpec(cores=cores, memory_bytes=memory)
    )


# ---------------------------------------------------------------- messaging
def test_single_message_runs_handler():
    rt = MRTS(small_cluster(1))
    c = rt.create_object(Counter)
    rt.post(c, "bump", 5)
    stats = rt.run()
    assert rt.get_object(c).value == 5
    assert stats.total_time >= 0
    assert rt.termination.quiescent


def test_unknown_handler_raises():
    rt = MRTS(small_cluster(1))
    c = rt.create_object(Counter)
    rt.post(c, "no_such_handler")
    with pytest.raises(MRTSError, match="no handler"):
        rt.run()


def test_non_handler_method_rejected():
    class Sneaky(MobileObject):
        def not_a_handler(self, ctx):
            pass

    rt = MRTS(small_cluster(1))
    s = rt.create_object(Sneaky)
    rt.post(s, "not_a_handler")
    with pytest.raises(MRTSError, match="no handler"):
        rt.run()


def test_cross_node_ping_pong():
    rt = MRTS(small_cluster(2))
    a = rt.create_object(Counter, node=0)
    b = rt.create_object(Counter, node=1)
    rt.post(a, "bump", 1, reply_to=b, limit=5)
    stats = rt.run()
    total = rt.get_object(a).value + rt.get_object(b).value
    assert total == 9  # a reaches 5, b reaches 4
    assert stats.messages_sent > 0
    assert stats.comm_time > 0


def test_messages_processed_fifo_per_object():
    order = []

    class Recorder(MobileObject):
        @handler
        def mark(self, ctx, tag):
            order.append(tag)

    rt = MRTS(small_cluster(1))
    r = rt.create_object(Recorder)
    for tag in ("a", "b", "c"):
        rt.post(r, "mark", tag)
    rt.run()
    assert order == ["a", "b", "c"]


def test_handler_can_create_objects():
    class Spawner(MobileObject):
        def __init__(self, ptr):
            super().__init__(ptr)
            self.children = []

        @handler
        def spawn(self, ctx, n):
            for k in range(n):
                child = ctx.create(Counter, node=ctx.node)
                self.children.append(child)
                ctx.post(child, "bump", k)

    rt = MRTS(small_cluster(1))
    s = rt.create_object(Spawner)
    rt.post(s, "spawn", 3)
    rt.run()
    spawner = rt.get_object(s)
    assert len(spawner.children) == 3
    values = sorted(rt.get_object(c).value for c in spawner.children)
    assert values == [0, 1, 2]


def test_explicit_charge_shapes_virtual_time():
    class Sleeper(MobileObject):
        @handler
        def work(self, ctx, seconds):
            ctx.charge(seconds)

    rt = MRTS(small_cluster(1))
    s = rt.create_object(Sleeper)
    rt.post(s, "work", 2.5)
    stats = rt.run()
    assert stats.total_time >= 2.5
    assert stats.comp_time >= 2.5


def test_two_cores_overlap_compute():
    class Sleeper(MobileObject):
        @handler
        def work(self, ctx, seconds):
            ctx.charge(seconds)

    spec = small_cluster(1, cores=2)
    rt = MRTS(spec)
    objs = [rt.create_object(Sleeper) for _ in range(2)]
    for o in objs:
        rt.post(o, "work", 1.0)
    stats = rt.run()
    # Two 1 s handlers on two cores: ~1 s wall, 2 s compute.
    assert stats.total_time == pytest.approx(1.0, rel=0.1)
    assert stats.comp_time == pytest.approx(2.0, rel=0.01)


def test_single_core_serializes_compute():
    class Sleeper(MobileObject):
        @handler
        def work(self, ctx, seconds):
            ctx.charge(seconds)

    rt = MRTS(small_cluster(1, cores=1))
    objs = [rt.create_object(Sleeper) for _ in range(2)]
    for o in objs:
        rt.post(o, "work", 1.0)
    stats = rt.run()
    assert stats.total_time == pytest.approx(2.0, rel=0.05)


# -------------------------------------------------------------- out-of-core
def test_spill_and_reload_preserves_state():
    spec = small_cluster(1, memory=300_000)
    rt = MRTS(spec)
    blobs = [rt.create_object(Blob, 100_000) for _ in range(6)]
    for _ in range(2):
        for b in blobs:
            rt.post(b, "touch")
    stats = rt.run()
    assert all(rt.get_object(b).touches == 2 for b in blobs)
    assert stats.objects_stored > 0
    assert stats.objects_loaded > 0
    assert stats.disk_time > 0
    assert rt.nodes[0].ooc.high_water <= 300_000


def test_real_file_spill(tmp_path):
    spec = small_cluster(1, memory=250_000)
    backend = FileBackend(tmp_path / "spill")
    rt = MRTS(spec, storage_factory=lambda r: backend)
    blobs = [rt.create_object(Blob, 100_000) for _ in range(5)]
    for b in blobs:
        rt.post(b, "touch")
    rt.run()
    # Files must really have existed on disk.
    assert rt.nodes[0].storage.stores > 0
    assert all(rt.get_object(b).touches == 1 for b in blobs)


def test_locked_object_stays_resident():
    spec = small_cluster(1, memory=300_000)
    rt = MRTS(spec)
    pinned = rt.create_object(Blob, 100_000)
    rt.nodes[0].ooc.lock(pinned.oid)
    others = [rt.create_object(Blob, 100_000) for _ in range(5)]
    for b in others:
        rt.post(b, "touch")
    rt.run()
    assert rt.nodes[0].ooc.is_resident(pinned.oid)


def test_object_growth_triggers_eviction():
    spec = small_cluster(1, memory=300_000)
    rt = MRTS(spec)
    a = rt.create_object(Blob, 100_000)
    b = rt.create_object(Blob, 100_000)
    rt.post(a, "grow", 150_000)
    rt.run()
    ooc = rt.nodes[0].ooc
    assert ooc.memory_used <= ooc.budget
    assert rt.get_object(a).payload == bytes(250_000)


def test_oversized_object_rejected():
    spec = small_cluster(1, memory=10_000)
    rt = MRTS(spec)
    with pytest.raises(OutOfMemory):
        rt.create_object(Blob, 50_000)


def test_cost_model_overrides_sizes_and_costs():
    class BigModel(CostModel):
        def handler_cost(self, obj, handler_name, msg):
            return 3.0

        def object_nbytes(self, obj):
            return 200_000  # pretend each blob is 200 KB

    spec = small_cluster(1, memory=500_000)
    rt = MRTS(spec, cost_model=BigModel())
    blobs = [rt.create_object(Blob, 10) for _ in range(4)]  # tiny for real
    for b in blobs:
        rt.post(b, "touch")
    stats = rt.run()
    # Modeled sizes force spills despite tiny real objects.
    assert stats.objects_stored > 0
    assert stats.comp_time == pytest.approx(12.0, rel=0.01)


# ----------------------------------------------------------------- multicast
def test_multicast_collects_and_delivers():
    class Leaf(MobileObject):
        def __init__(self, ptr):
            super().__init__(ptr)
            self.refined = 0

        @handler
        def refine(self, ctx, buddies):
            # All buddies must be co-resident and in core right now.
            assert all(ctx.is_resident(p) for p in buddies)
            self.refined += 1

    class Root(MobileObject):
        @handler
        def go(self, ctx, leaves):
            ctx.post_multicast(leaves, "refine", 1, leaves[1:])

    rt = MRTS(small_cluster(2))
    leaves = [rt.create_object(Leaf, node=k % 2) for k in range(4)]
    root = rt.create_object(Root, node=0)
    rt.post(root, "go", leaves)
    rt.run()
    assert rt.get_object(leaves[0]).refined == 1
    # All leaves ended up on the gather node (the first leaf's node).
    gather = rt.object_location(leaves[0])
    assert all(rt.object_location(p) == gather for p in leaves)


def test_multicast_deliver_count_two():
    class Leaf(MobileObject):
        def __init__(self, ptr):
            super().__init__(ptr)
            self.hits = 0

        @handler
        def poke(self, ctx):
            self.hits += 1

    class Root(MobileObject):
        @handler
        def go(self, ctx, leaves):
            ctx.post_multicast(leaves, "poke", 2)

    rt = MRTS(small_cluster(1))
    leaves = [rt.create_object(Leaf) for _ in range(3)]
    root = rt.create_object(Root)
    rt.post(root, "go", leaves)
    rt.run()
    hits = [rt.get_object(p).hits for p in leaves]
    assert hits == [1, 1, 0]


# ----------------------------------------------------------------- migration
def test_migration_moves_object_and_messages():
    rt = MRTS(small_cluster(2))
    c = rt.create_object(Counter, node=0)
    rt.migrate(c, 1)
    rt.post(c, "bump", 7)
    rt.run()
    assert rt.object_location(c) == 1
    assert rt.get_object(c).value == 7


def test_migration_to_same_node_is_noop():
    rt = MRTS(small_cluster(2))
    c = rt.create_object(Counter, node=0)
    rt.migrate(c, 0)
    rt.post(c, "bump")
    rt.run()
    assert rt.object_location(c) == 0


def test_stale_directory_hint_forwards():
    """Send to an object that has migrated: lazy forwarding must deliver."""
    rt = MRTS(small_cluster(3))
    c = rt.create_object(Counter, node=0)
    rt.post(c, "bump")  # teach node 0's tables
    rt.run()
    rt.migrate(c, 2)
    rt.post(c, "bump")
    rt.run()
    assert rt.get_object(c).value == 2
    assert rt.object_location(c) == 2


# --------------------------------------------------------------- direct call
def test_call_direct_runs_inline():
    calls = []

    class Pair(MobileObject):
        @handler
        def first(self, ctx, other):
            ok = ctx.call_direct(other, "second")
            calls.append(("direct", ok))
            if not ok:
                ctx.post(other, "second")

        @handler
        def second(self, ctx):
            calls.append(("second", ctx.node))

    rt = MRTS(small_cluster(1))
    a = rt.create_object(Pair)
    b = rt.create_object(Pair)
    rt.post(a, "first", b)
    rt.run()
    assert ("direct", True) in calls
    assert any(c[0] == "second" for c in calls)


def test_call_direct_fails_for_remote():
    outcomes = []

    class Pair(MobileObject):
        @handler
        def first(self, ctx, other):
            outcomes.append(ctx.call_direct(other, "second"))

        @handler
        def second(self, ctx):
            pass

    rt = MRTS(small_cluster(2))
    a = rt.create_object(Pair, node=0)
    b = rt.create_object(Pair, node=1)
    rt.post(a, "first", b)
    rt.run()
    assert outcomes == [False]


# ------------------------------------------------------------------ lifecycle
def test_destroy_object():
    rt = MRTS(small_cluster(1))
    c = rt.create_object(Counter)
    rt.post(c, "bump")
    rt.run()

    class Destroyer(MobileObject):
        @handler
        def kill(self, ctx, victim):
            ctx.destroy(victim)

    d = rt.create_object(Destroyer)
    rt.post(d, "kill", c)
    rt.run()
    assert c.oid not in rt.directory


def test_run_without_messages_is_trivially_quiescent():
    rt = MRTS(small_cluster(1))
    rt.create_object(Counter)
    stats = rt.run()
    assert stats.total_time == 0.0


def test_priorities_steer_eviction_order():
    spec = small_cluster(1, memory=300_000)
    rt = MRTS(spec)
    favored = rt.create_object(Blob, 100_000)
    victim = rt.create_object(Blob, 100_000)
    rt.nodes[0].ooc.set_priority(favored.oid, 100.0)
    # Force pressure: a third object must push someone out.
    rt.create_object(Blob, 100_000)
    extra = rt.create_object(Blob, 50_000)
    ooc = rt.nodes[0].ooc
    assert ooc.is_resident(favored.oid)
    assert not ooc.is_resident(victim.oid)
