"""Tests for the constrained Delaunay triangulation kernel."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import PSLG, BoundingBox, unit_square, pipe_cross_section
from repro.mesh import Triangulation, triangulate_pslg
from repro.mesh.quality import triangle_area


def _fresh(points):
    tri = Triangulation(BoundingBox(0, 0, 1, 1))
    for p in points:
        tri.insert_point(p)
    return tri


def test_single_point_insertion():
    tri = _fresh([(0.5, 0.5)])
    assert tri.n_vertices == 1
    # Super triangle split into 3.
    assert sum(1 for _ in tri.alive_triangles()) == 3
    assert tri.check_delaunay() == []


def test_duplicate_point_returns_same_id():
    tri = Triangulation(BoundingBox(0, 0, 1, 1))
    a = tri.insert_point((0.5, 0.5))
    b = tri.insert_point((0.5, 0.5))
    assert a == b
    assert tri.n_vertices == 1


def test_square_corners_delaunay():
    tri = _fresh([(0, 0), (1, 0), (1, 1), (0, 1)])
    assert tri.check_delaunay() == []
    assert tri.n_vertices == 4


def test_locate_finds_containing_triangle():
    tri = _fresh([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)])
    tid = tri.locate((0.25, 0.25))
    a, b, c = tri.triangle_vertices(tid)
    from repro.geometry import point_in_triangle

    assert point_in_triangle(
        (0.25, 0.25), tri.vertex(a), tri.vertex(b), tri.vertex(c)
    )


def test_find_vertex():
    tri = _fresh([(0.3, 0.3), (0.7, 0.7)])
    vid = tri.find_vertex((0.3, 0.3))
    assert vid is not None and tri.vertex(vid) == (0.3, 0.3)
    assert tri.find_vertex((0.5, 0.1)) is None


def test_grid_insertion_stays_delaunay():
    tri = Triangulation(BoundingBox(0, 0, 1, 1))
    for i in range(5):
        for j in range(5):
            tri.insert_point((i / 4.0, j / 4.0))
    assert tri.check_delaunay() == []
    assert tri.n_vertices == 25


def test_cocircular_points_handled():
    """Regular polygon vertices are all cocircular — exact arithmetic path."""
    tri = Triangulation(BoundingBox(-1, -1, 1, 1))
    for k in range(8):
        angle = 2 * math.pi * k / 8
        tri.insert_point((math.cos(angle), math.sin(angle)))
    assert tri.check_delaunay() == []


def test_insert_segment_marks_constrained():
    tri = _fresh([(0, 0), (1, 0), (1, 1), (0, 1)])
    v0 = tri.find_vertex((0.0, 0.0))
    v2 = tri.find_vertex((1.0, 1.0))
    tri.insert_segment(v0, v2)
    assert tri.is_constrained(v0, v2)
    assert tri.check_delaunay() == []


def test_insert_segment_forces_missing_edge():
    """Build points so the diagonal (0,0)-(1,1) is NOT Delaunay, then force it."""
    tri = _fresh([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.05), (0.5, 0.95)])
    v0 = tri.find_vertex((0.0, 0.0))
    v2 = tri.find_vertex((1.0, 1.0))
    tri.insert_segment(v0, v2)
    assert tri.is_constrained(v0, v2)
    # Edge must exist in some triangle now.
    assert tri._find_triangle_with_edge(v0, v2) is not None
    problems = tri.check_delaunay()
    assert problems == []


def test_segment_through_existing_vertex_splits():
    """A constraint through a mesh vertex becomes chained subsegments."""
    tri = _fresh([(0, 0), (1, 0), (0.5, 0.0)])
    a = tri.find_vertex((0.0, 0.0))
    b = tri.find_vertex((1.0, 0.0))
    m = tri.find_vertex((0.5, 0.0))
    tri.insert_segment(a, b)
    assert tri.is_constrained(a, m)
    assert tri.is_constrained(m, b)
    assert not tri.is_constrained(a, b)


def test_degenerate_segment_rejected():
    tri = _fresh([(0.5, 0.5)])
    with pytest.raises(ValueError):
        tri.insert_segment(3, 3)


def test_triangulate_pslg_square():
    tri = triangulate_pslg(unit_square())
    assert tri.check_delaunay() == []
    # Two triangles cover the square.
    assert tri.n_triangles == 2
    area = sum(triangle_area(*tri.coords(t)) for t in tri.triangles())
    assert area == pytest.approx(1.0)


def test_triangulate_pslg_pipe_removes_hole():
    pslg = pipe_cross_section(n=24)
    tri = triangulate_pslg(pslg)
    assert tri.check_delaunay() == []
    # Area must approximate the annulus area (polygonalized).
    area = sum(triangle_area(*tri.coords(t)) for t in tri.triangles())
    import math as m

    full = m.pi * (1.0**2 - 0.45**2)
    assert area == pytest.approx(full, rel=0.05)
    # No triangle's centroid may fall inside the inner hole.
    for t in tri.triangles():
        a, b, c = tri.coords(t)
        cx = (a[0] + b[0] + c[0]) / 3
        cy = (a[1] + b[1] + c[1]) / 3
        assert cx * cx + cy * cy > 0.40**2


def test_exterior_removal_drops_super_triangles():
    tri = triangulate_pslg(unit_square())
    for t in tri.alive_triangles():
        assert not any(tri.is_super_vertex(v) for v in tri.triangle_vertices(t))


def test_locate_outside_after_removal_raises():
    tri = triangulate_pslg(unit_square())
    with pytest.raises(KeyError):
        tri.locate((5.0, 5.0))


def test_split_segment_interior():
    tri = _fresh([(0, 0), (1, 0), (1, 1), (0, 1)])
    v0 = tri.find_vertex((0.0, 0.0))
    v2 = tri.find_vertex((1.0, 1.0))
    tri.insert_segment(v0, v2)
    mid = tri.split_segment(v0, v2)
    assert tri.vertex(mid) == (0.5, 0.5)
    assert tri.is_constrained(v0, mid)
    assert tri.is_constrained(mid, v2)
    assert not tri.is_constrained(v0, v2)
    assert tri.check_delaunay() == []


def test_split_segment_boundary():
    """Splitting a domain-boundary edge keeps the mesh consistent."""
    tri = triangulate_pslg(unit_square())
    # Find the boundary edge (0,0)-(1,0).
    a = tri.find_vertex((0.0, 0.0))
    b = tri.find_vertex((1.0, 0.0))
    mid = tri.split_segment(a, b)
    assert tri.vertex(mid) == (0.5, 0.0)
    assert tri.check_delaunay() == []
    area = sum(triangle_area(*tri.coords(t)) for t in tri.triangles())
    assert area == pytest.approx(1.0)


def test_split_segment_requires_constraint():
    tri = _fresh([(0, 0), (1, 0)])
    with pytest.raises(KeyError):
        tri.split_segment(3, 4)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=0.99),
            st.floats(min_value=0.01, max_value=0.99),
        ),
        min_size=3,
        max_size=40,
    )
)
def test_random_insertion_is_delaunay(points):
    """Property: any random insertion order yields a valid Delaunay mesh."""
    tri = Triangulation(BoundingBox(0, 0, 1, 1))
    ids = set()
    for p in points:
        ids.add(tri.insert_point(p))
    assert tri.check_delaunay() == []
    assert tri.n_vertices == len(ids)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)),
        min_size=3,
        max_size=30,
        unique=True,
    )
)
def test_integer_grid_points_exact_path(coords):
    """Integer coordinates maximize cocircularity: stresses exact fallback."""
    tri = Triangulation(BoundingBox(0, 0, 12, 12))
    for x, y in coords:
        tri.insert_point((float(x), float(y)))
    assert tri.check_delaunay() == []
