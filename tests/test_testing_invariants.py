"""Tests that the invariant checkers catch what they claim to catch.

Each test corrupts exactly one piece of cross-layer bookkeeping on an
otherwise healthy runtime and asserts the checker names it.  A checker
that never fires is worse than none — these are the tests of the tests.
"""

import pytest

from repro.core import MRTSConfig, OOCLayer
from repro.geometry import unit_square
from repro.mesh import triangulate_pslg
from repro.pumg import sequential_mesh
from repro.testing import (
    InvariantViolation,
    WorkloadSpec,
    assert_invariants,
    check_mesh,
    check_ooc_layer,
    check_runtime,
)


@pytest.fixture
def healthy(harness):
    h = harness(n_nodes=2, memory_bytes=32 * 1024)
    h.run_storm(WorkloadSpec(n_actors=6, payload_bytes=2048, seed=3))
    return h.runtime


# --------------------------------------------------------------- ooc checker
def test_bare_ooc_layer_clean():
    ooc = OOCLayer(MRTSConfig(), budget=1 << 20)
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    assert check_ooc_layer(ooc) == []


def test_ooc_detects_memory_miscount():
    ooc = OOCLayer(MRTSConfig(), budget=1 << 20)
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    ooc.memory_used += 7  # corrupt
    problems = check_ooc_layer(ooc)
    assert any("memory_used" in p for p in problems)


def test_ooc_detects_silent_overrun():
    ooc = OOCLayer(MRTSConfig(), budget=1000)
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    ooc.table[1].nbytes = 2000
    ooc.memory_used = 2000  # over budget, overruns == 0
    assert any("overrun" in p for p in check_ooc_layer(ooc))


def test_ooc_detects_locked_nonresident():
    ooc = OOCLayer(MRTSConfig(), budget=1 << 20)
    ooc.admit(1, 100)
    ooc.confirm_admit(1)
    ooc.table[1].resident = False
    ooc.memory_used = 0
    ooc.table[1].locked = 1
    assert any("locked but not resident" in p for p in check_ooc_layer(ooc))


# ----------------------------------------------------------- runtime checker
def test_healthy_runtime_has_no_violations(healthy):
    assert check_runtime(healthy) == []
    assert_invariants(healthy)  # does not raise


def test_detects_directory_lie(healthy):
    oid = next(iter(healthy.nodes[0].locals))
    healthy.directory.truth[oid] = 1  # object actually lives on node 0
    problems = check_runtime(healthy)
    assert any("directory says" in p for p in problems)


def test_detects_phantom_directory_entry(healthy):
    healthy.directory.truth[99999] = 0
    assert any("lives nowhere" in p for p in check_runtime(healthy))


def test_detects_ooc_locals_divergence(healthy):
    nrt = healthy.nodes[0]
    oid = next(iter(nrt.locals))
    nrt.ooc.table.pop(oid)
    # Fix the memory count so only the divergence fires, not accounting.
    nrt.ooc.memory_used = sum(
        r.nbytes for r in nrt.ooc.table.values() if r.resident
    )
    assert any("not local" in p or "untracked" in p
               for p in check_runtime(healthy))


def test_detects_leaked_lock_at_quiescence(healthy):
    nrt = healthy.nodes[0]
    oid = next(o for o in nrt.locals if nrt.ooc.is_resident(o))
    nrt.ooc.lock(oid)
    assert any("still locked at quiescence" in p
               for p in check_runtime(healthy))


def test_detects_spill_without_storage(healthy):
    nrt = healthy.nodes[0]
    oid = next(iter(nrt.locals))
    rec = nrt.locals[oid]
    residency = nrt.ooc.table[oid]
    if residency.resident:
        residency.resident = False
        nrt.ooc.memory_used -= residency.nbytes
    rec.obj = None
    nrt.storage.delete(oid)
    assert any("missing from storage" in p for p in check_runtime(healthy))


def test_assert_invariants_raises_with_details(healthy):
    healthy.directory.truth[424242] = 0
    with pytest.raises(InvariantViolation) as exc:
        assert_invariants(healthy)
    assert exc.value.violations
    assert "424242" in str(exc.value)


def test_assert_invariants_rejects_unknown_subject():
    with pytest.raises(TypeError):
        assert_invariants(object())


# -------------------------------------------------------------- mesh checker
def test_refined_mesh_is_conforming():
    mesh = sequential_mesh(unit_square(), ("uniform", 0.2))
    assert check_mesh(mesh) == []


def test_mesh_checker_detects_vertex_corruption():
    tri = triangulate_pslg(unit_square())
    # Drag an interior-facing vertex far away: orientation/adjacency break.
    victim = len(tri.points) - 1
    tri.points[victim] = (1e6, 1e6)
    assert check_mesh(tri) != []


def test_mesh_checker_angle_floor():
    mesh = sequential_mesh(unit_square(), ("uniform", 0.2))
    # An impossible floor flags every triangle; a permissive one flags none.
    assert check_mesh(mesh, min_angle_deg=89.0) != []
    assert check_mesh(mesh, min_angle_deg=1.0) == []
