"""Unit tests for the PUMG coordinator objects in isolation.

The full-stack behaviour is covered by test_pumg_methods; these exercise
the dispatch/barrier logic directly with a scripted context, which makes
the corner cases (busy-set exclusivity, color phases, reordering) cheap to
pin down.
"""

import pytest

from repro.core.mobile import MobilePointer
from repro.pumg.nupdr import ONUPDROptions, RefinementQueueObject
from repro.pumg.updr import UPDRCoordinatorObject


class ScriptedCtx:
    """Minimal HandlerContext stand-in recording interactions."""

    def __init__(self, resident=None):
        self.posts = []
        self.direct_calls = []
        self.priorities = {}
        self.boosts = {}
        self._resident = resident if resident is not None else set()

    def post(self, target, name, *args, **kwargs):
        self.posts.append((target.oid, name, args))

    def post_multicast(self, targets, name, deliver_count, *args, **kwargs):
        self.posts.append(
            ([t.oid for t in targets], f"mcast:{name}", (deliver_count,) + args)
        )

    def call_direct(self, target, name, *args, **kwargs):
        self.direct_calls.append((target.oid, name))
        return False  # force the message path so posts are observable

    def set_priority(self, target, priority):
        self.priorities[target.oid] = priority

    def boost_schedule(self, target, amount=1.0):
        self.boosts[target.oid] = self.boosts.get(target.oid, 0) + amount

    def is_resident(self, target):
        return target.oid in self._resident


def _ptr(oid):
    return MobilePointer(oid=oid)


def _leaves(n, neighbors_fn):
    return {
        k: (_ptr(100 + k), neighbors_fn(k), (0, 0, 1, 1)) for k in range(n)
    }


# ============================================================ NUPDR queue
def ring_neighbors(k, n=6):
    return [(k - 1) % n, (k + 1) % n]


def make_queue(options=None, n=6):
    leaves = _leaves(n, lambda k: ring_neighbors(k, n))
    return RefinementQueueObject(_ptr(1), leaves, options or ONUPDROptions())


def test_queue_dispatch_respects_buffer_exclusivity():
    queue = make_queue(ONUPDROptions(max_concurrent=6, reorder_queue=False))
    ctx = ScriptedCtx()
    queue.start(ctx, list(range(6)))
    # On a 6-ring, leaf k busy-locks k and its two neighbors: at most 2
    # non-adjacent refinements can be in flight.
    assert queue.in_progress == 2
    started = {
        args[0].oid - 100
        for oid, name, args in ctx.posts
        if name == "construct_buffer"
    }
    for a in started:
        for b in started:
            if a != b:
                assert b not in ring_neighbors(a)


def test_queue_max_concurrent_limits_dispatch():
    queue = make_queue(ONUPDROptions(max_concurrent=1, reorder_queue=False))
    ctx = ScriptedCtx()
    queue.start(ctx, list(range(6)))
    assert queue.in_progress == 1


def test_queue_update_releases_and_redispatches():
    queue = make_queue(ONUPDROptions(max_concurrent=1, reorder_queue=False))
    ctx = ScriptedCtx()
    queue.start(ctx, [0, 3])
    assert queue.in_progress == 1
    queue.update(ctx, 0, [])  # leaf 0 done, nothing new dirty
    assert queue.in_progress == 1  # leaf 3 dispatched next
    queue.update(ctx, 3, [])
    assert queue.idle


def test_queue_update_enqueues_dirty():
    queue = make_queue(ONUPDROptions(max_concurrent=1, reorder_queue=False))
    ctx = ScriptedCtx()
    queue.start(ctx, [0])
    queue.update(ctx, 0, [2, 4])
    assert queue.in_progress == 1
    queue.update(ctx, 2, []) if 2 in queue.busy else None
    # Drain fully.
    while not queue.idle:
        busy_leaf = next(iter(b for b in queue.busy if b in (2, 4)))
        queue.update(ctx, busy_leaf, [])
    assert queue.idle


def test_queue_reorder_prefers_resident_buffers():
    # Leaves 0..5; make leaf 3's buffer resident.
    resident = {100 + 2, 100 + 4}
    queue = make_queue(ONUPDROptions(max_concurrent=1, reorder_queue=True))
    ctx = ScriptedCtx(resident=resident)
    queue.start(ctx, [0, 3])
    first = next(
        args[0].oid - 100
        for oid, name, args in ctx.posts
        if name == "construct_buffer"
    )
    assert first == 3  # buffers in core -> preferred (§III)


def test_queue_priorities_set_and_cleared():
    queue = make_queue(ONUPDROptions(max_concurrent=1, priorities=True,
                                     reorder_queue=False))
    ctx = ScriptedCtx()
    queue.start(ctx, [0])
    assert ctx.priorities[100] == 100.0           # the leaf
    assert ctx.priorities[101] < 100.0            # its buffer, lower
    queue.update(ctx, 0, [])
    assert ctx.priorities[100] == 0.0             # reset on completion


def test_queue_multicast_mode_posts_multicast():
    queue = make_queue(ONUPDROptions(max_concurrent=1, multicast=True,
                                     reorder_queue=False))
    ctx = ScriptedCtx()
    queue.start(ctx, [0])
    kinds = [name for _, name, _ in ctx.posts]
    assert "mcast:construct_buffer" in kinds


def test_queue_duplicate_enqueue_ignored():
    queue = make_queue(ONUPDROptions(max_concurrent=1, reorder_queue=False))
    ctx = ScriptedCtx()
    queue.start(ctx, [5, 5, 5])
    queue.update(ctx, 5, [])
    assert queue.idle  # 5 ran once, not three times


# ========================================================== UPDR coordinator
def make_coordinator(side=2):
    blocks = {}
    for j in range(side):
        for i in range(side):
            block_id = j * side + i
            neighbors = []
            for dj in (-1, 0, 1):
                for di in (-1, 0, 1):
                    if di == dj == 0:
                        continue
                    ni, nj = i + di, j + dj
                    if 0 <= ni < side and 0 <= nj < side:
                        neighbors.append(nj * side + ni)
            color = (i % 2) + 2 * (j % 2)
            blocks[block_id] = (_ptr(200 + block_id), neighbors, color)
    return UPDRCoordinatorObject(_ptr(2), blocks)


def test_updr_one_color_at_a_time():
    coord = make_coordinator(side=2)
    ctx = ScriptedCtx()
    coord.start(ctx, [0, 1, 2, 3])
    # 2x2 grid: exactly one block per color; first launch = color 0 only.
    launched = {
        args[0].oid - 200
        for oid, name, args in ctx.posts
        if name == "construct_buffer"
    }
    assert launched == {0}
    assert coord.outstanding == 1


def test_updr_barrier_advances_colors():
    coord = make_coordinator(side=2)
    ctx = ScriptedCtx()
    coord.start(ctx, [0, 1, 2, 3])
    served = []
    for _ in range(4):
        # Find the block whose construct_buffer went out last.
        leaf_posts = [
            args[0].oid - 200
            for oid, name, args in ctx.posts
            if name == "construct_buffer"
        ]
        current = leaf_posts[-1]
        served.append(current)
        coord.update(ctx, current, [])
    # All four blocks ran, in color order 0,1,2,3 for a 2x2 grid.
    assert served == [0, 1, 2, 3]
    assert coord.phases == 4


def test_updr_terminates_after_quiet_sweep():
    coord = make_coordinator(side=2)
    ctx = ScriptedCtx()
    coord.start(ctx, [0])
    coord.update(ctx, 0, [])  # nothing dirty afterwards
    # A full quiet sweep leaves nothing outstanding.
    assert coord.outstanding == 0
    assert coord.idle_colors >= 4 or not coord.dirty


def test_updr_redirties_reschedule():
    coord = make_coordinator(side=2)
    ctx = ScriptedCtx()
    coord.start(ctx, [0])
    coord.update(ctx, 0, [0])  # block redirties itself
    # It must be launched again on the next color-0 pass.  A launch posts
    # construct_buffer to the leaf and every buffer member; count only the
    # post whose *target* is the leaf itself.
    launches = [
        oid - 200
        for oid, name, args in ctx.posts
        if name == "construct_buffer" and oid == args[0].oid
    ]
    assert launches.count(0) == 2
