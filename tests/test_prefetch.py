"""Tests for the learned prefetcher (PR 7).

Three layers of coverage:

* :class:`PrefetchPredictor` unit behaviour — Markov learning, confidence
  filtering, background-load exclusion, bounded memory.
* The runtime's prefetch accounting — issued/hit/wasted counters, the
  PrefetchEvent stream, the metrics counter.
* The advisory-only property: prefetch (and the pack-file layout) may
  move *when* bytes travel but must never change the final application
  state — pinned across seeds and swap schemes with Hypothesis.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MRTSConfig
from repro.core.prefetch import PrefetchPredictor
from repro.obs.events import EventBus, LoadEvent
from repro.testing.harness import RuntimeHarness
from repro.testing.workloads import WorkloadSpec, run_storm


def _load(node, oid, background=False):
    return LoadEvent(
        time=0.0, node=node, oid=oid, nbytes=64,
        background=background, memory_used=0,
    )


# ---------------------------------------------------------------- predictor
def test_markov_table_learns_the_sweep_order():
    p = PrefetchPredictor()
    for _ in range(3):
        for oid in (1, 2, 3):
            p.observe(0, oid)
    assert p.predict(0, after=1) == [2]
    assert p.predict(0, after=2) == [3]
    assert p.confidence(0, 1, 2) > 0.9
    # ``after`` defaults to the most recent demand load (3 -> 1).
    assert p.predict(0) == [1]


def test_low_confidence_successors_are_filtered():
    p = PrefetchPredictor()
    # After 1: mostly 2, occasionally each of 5..9 (noise).
    for successor in [2, 2, 2, 2, 5, 6, 7, 8]:
        p.observe(0, 1)
        p.observe(0, successor)
    assert p.predict(0, after=1, min_confidence=0.4) == [2]
    assert 5 not in p.predict(0, after=1, min_confidence=0.25)


def test_nodes_learn_independently():
    p = PrefetchPredictor()
    p.observe(0, 1)
    p.observe(0, 2)
    p.observe(1, 1)
    p.observe(1, 9)
    assert p.predict(0, after=1) == [2]
    assert p.predict(1, after=1) == [9]


def test_background_loads_never_train_the_table():
    p = PrefetchPredictor()
    p(_load(0, 1))
    p(_load(0, 7, background=True))  # our own prefetch: excluded
    p(_load(0, 2))
    assert p.predict(0, after=1) == [2]
    assert p.predict(0, after=7) == []


def test_attach_subscribes_for_load_events_only():
    bus = EventBus()
    p = PrefetchPredictor()
    sub = p.attach(bus)
    bus.publish(_load(0, 1))
    bus.publish(_load(0, 2))
    assert p.predict(0, after=1) == [2]
    sub.close()
    assert bus.active is False


def test_state_cap_bounds_the_table():
    p = PrefetchPredictor(max_states=2)
    for prior, nxt in [(1, 2), (1, 2), (3, 4), (5, 6)]:
        p.observe(0, prior)
        p.observe(0, nxt)
    assert len(p._succ[0]) <= 2  # a state was evicted to admit new ones


def test_successor_tail_is_trimmed():
    p = PrefetchPredictor(max_successors=2)
    for successor in (2, 2, 2, 3, 3, 4):
        p.observe(0, 1)
        p.observe(0, successor)
    assert len(p._succ[0][1]) <= 2


# ------------------------------------------------------ runtime accounting
def _run_sweep():
    from repro.perf import run_mesh_neighborhood_sweep

    return run_mesh_neighborhood_sweep()


def test_neighborhood_sweep_hit_rate_meets_target():
    """ISSUE 7 acceptance: >= 0.5 on the repetitive-sweep workload."""
    stats = _run_sweep().runtime.stats
    assert stats.prefetch_issued > 0
    assert stats.prefetch_hit_rate >= 0.5


def test_prefetch_accounting_balances():
    stats = _run_sweep().runtime.stats
    assert (
        stats.prefetch_hits + stats.prefetch_wasted <= stats.prefetch_issued
    )


def test_prefetch_events_match_counters():
    from repro.obs import MetricsCollector
    from repro.perf import run_mesh_neighborhood_sweep

    subs = []
    metrics = MetricsCollector()

    def observe(runtime):
        subs.append(runtime.bus.subscribe(kinds=("prefetch",)))
        metrics.attach(runtime.bus)

    result = run_mesh_neighborhood_sweep(on_runtime=observe)
    stats = result.runtime.stats
    phases = {"issue": 0, "hit": 0, "wasted": 0}
    for event in subs[0].events:
        phases[event.phase] += 1
    assert phases["issue"] == stats.prefetch_issued
    assert phases["hit"] == stats.prefetch_hits
    assert phases["wasted"] == stats.prefetch_wasted
    total = sum(
        metrics.prefetch.value(**labels)
        for labels in metrics.prefetch.labels()
    )
    assert total == sum(phases.values())


def test_prefetch_lane_in_chrome_trace():
    from repro.obs.export import LANES, to_chrome_trace
    from repro.perf import run_mesh_neighborhood_sweep

    subs = []
    result = run_mesh_neighborhood_sweep(
        on_runtime=lambda rt: subs.append(rt.bus.subscribe())
    )
    assert result.runtime.stats.prefetch_issued > 0
    doc = to_chrome_trace(list(subs[0].events))
    lane = LANES["prefetch"]
    prefetch_rows = [
        e for e in doc["traceEvents"]
        if e.get("tid") == lane and e.get("ph") == "i"
    ]
    assert prefetch_rows
    names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "M"}
    assert "thread_name" in names


# ----------------------------------------------------- advisory-only property
def _storm_state(seed: int, scheme: str, prefetch: bool):
    config = MRTSConfig(
        swap_scheme=scheme,
        prefetch_depth=2 if prefetch else 0,
        learned_prefetch=prefetch,
        packfile_spills=prefetch,
        neighborhood_warm=2 if prefetch else 0,
    )
    harness = RuntimeHarness(
        n_nodes=2, memory_bytes=24 * 1024, config=config
    )
    spec = WorkloadSpec(
        n_actors=8, payload_bytes=2048, initial_pulses=3, hops=4,
        fanout=2, grow_every=2, grow_bytes=1024, seed=seed,
    )
    ptrs = run_storm(harness.runtime, spec)
    return {
        p.oid: (o.hits, o.forwarded, len(o.payload))
        for p in ptrs
        for o in [harness.runtime.get_object(p)]
    }


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    scheme=st.sampled_from(["lru", "mru", "lfu"]),
)
def test_prefetch_is_advisory_only(seed, scheme):
    """Prefetch + pack layout may reorder I/O, never application state."""
    assert _storm_state(seed, scheme, True) == _storm_state(
        seed, scheme, False
    )
