"""Integration test: out-of-core block matrix multiply (non-mesh workload).

Exercises the trickiest runtime interaction: many concurrent multicast
collections competing for shared mobile objects under a memory budget far
below the working set, with numerically verifiable output.
"""

import numpy as np
import pytest

from repro.core import MobileObject, MRTS, handler
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec


class MatrixBlock(MobileObject):
    def __init__(self, pointer, data):
        super().__init__(pointer)
        self.data = np.asarray(data, dtype=np.float64)

    def nbytes(self):
        return self.data.nbytes + 512

    @handler
    def multiply_into(self, ctx, other, accumulator):
        rhs = ctx.peek(other)
        assert rhs is not None, "multicast must have collected the operand"
        ctx.post(accumulator, "accumulate", self.data @ rhs.data)

    @handler
    def accumulate(self, ctx, partial):
        self.data = self.data + partial
        self.mark_dirty()


class Driver(MobileObject):
    @handler
    def go(self, ctx, a, b, c, n):
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    ctx.post_multicast(
                        [a[i, k], b[k, j]], "multiply_into", 1,
                        b[k, j], c[i, j],
                    )


def run_matmul(n_blocks=3, block=16, memory_blocks=4.5, n_nodes=2, seed=0):
    rng = np.random.default_rng(seed)
    size = n_blocks * block
    a_full = rng.standard_normal((size, size))
    b_full = rng.standard_normal((size, size))
    block_bytes = block * block * 8
    cluster = ClusterSpec(
        n_nodes=n_nodes,
        node=NodeSpec(cores=2, memory_bytes=int(memory_blocks * block_bytes)),
    )
    rt = MRTS(cluster)

    def blocks_of(full):
        return {
            (i, j): rt.create_object(
                MatrixBlock,
                full[i * block:(i + 1) * block, j * block:(j + 1) * block],
                node=(i * n_blocks + j) % n_nodes,
            )
            for i in range(n_blocks)
            for j in range(n_blocks)
        }

    a, b = blocks_of(a_full), blocks_of(b_full)
    c = blocks_of(np.zeros_like(a_full))
    driver = rt.create_object(Driver, node=0)
    rt.post(driver, "go", a, b, c, n_blocks)
    stats = rt.run()
    result = np.block([
        [rt.get_object(c[i, j]).data for j in range(n_blocks)]
        for i in range(n_blocks)
    ])
    return result, a_full @ b_full, stats


def test_matmul_correct_under_ooc_pressure():
    result, expected, stats = run_matmul()
    assert np.max(np.abs(result - expected)) < 1e-9
    assert stats.objects_stored > 0


def test_matmul_correct_in_core():
    result, expected, stats = run_matmul(memory_blocks=200)
    assert np.max(np.abs(result - expected)) < 1e-9
    assert stats.objects_stored == 0


def test_matmul_single_node():
    result, expected, stats = run_matmul(n_nodes=1, memory_blocks=5.0)
    assert np.max(np.abs(result - expected)) < 1e-9


@pytest.mark.parametrize("seed", [1, 2])
def test_matmul_various_inputs(seed):
    result, expected, _ = run_matmul(seed=seed)
    assert np.max(np.abs(result - expected)) < 1e-9
