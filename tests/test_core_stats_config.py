"""Tests for run statistics (overlap metric) and runtime configuration."""

import pytest

from repro.core import MRTSConfig, NodeStats, RunStats
from repro.util.errors import ConfigError


# ------------------------------------------------------------------ config
def test_default_config_matches_paper():
    config = MRTSConfig()
    assert config.hard_threshold_factor == 2.0      # paper: default is two
    assert config.soft_threshold_fraction == 0.5    # paper: default one half
    assert config.swap_scheme == "lru"              # paper: LRU usually best
    assert config.directory_policy == "lazy"        # paper: lazy updates


def test_config_validation():
    with pytest.raises(ConfigError):
        MRTSConfig(memory_budget=0)
    with pytest.raises(ConfigError):
        MRTSConfig(hard_threshold_factor=0.5)
    with pytest.raises(ConfigError):
        MRTSConfig(soft_threshold_fraction=1.5)
    with pytest.raises(ConfigError):
        MRTSConfig(swap_scheme="fifo")
    with pytest.raises(ConfigError):
        MRTSConfig(directory_policy="magic")
    with pytest.raises(ConfigError):
        MRTSConfig(executor="gpu")
    with pytest.raises(ConfigError):
        MRTSConfig(overdecomposition=0)
    with pytest.raises(ConfigError):
        MRTSConfig(prefetch_depth=-1)
    with pytest.raises(ConfigError):
        MRTSConfig(message_aggregation=0)


# ------------------------------------------------------------------- stats
def test_node_stats_accumulate():
    ns = NodeStats()
    ns.add_comp(1.0)
    ns.add_comp(2.0)
    ns.add_comm(0.5, 100)
    ns.add_disk(0.25, 1000, is_store=True)
    ns.add_disk(0.25, 500, is_store=False)
    assert ns.comp_time == 3.0
    assert ns.handlers_run == 2
    assert ns.messages_sent == 1
    assert ns.bytes_sent == 100
    assert ns.objects_stored == 1
    assert ns.objects_loaded == 1
    assert ns.bytes_stored == 1000
    assert ns.bytes_loaded == 500


def test_run_stats_percentages():
    stats = RunStats(total_time=10.0)
    node = stats.node(0)
    node.add_comp(6.0)
    node.add_comm(2.0, 0)
    node.add_disk(4.0, 0, is_store=True)
    assert stats.comp_pct(1) == pytest.approx(60.0)
    assert stats.comm_pct(1) == pytest.approx(20.0)
    assert stats.disk_pct(1) == pytest.approx(40.0)
    # Busy sum 12 over 10 wall => 20% overlap.
    assert stats.overlap_pct(1) == pytest.approx(20.0)


def test_overlap_clamped_at_zero():
    stats = RunStats(total_time=10.0)
    stats.node(0).add_comp(1.0)
    assert stats.overlap_pct(1) == 0.0


def test_multi_node_aggregation():
    stats = RunStats(total_time=10.0)
    stats.node(0).add_comp(5.0)
    stats.node(1).add_comp(5.0)
    # 10 busy seconds over 2 PEs x 10 s = 50%.
    assert stats.comp_pct(2) == pytest.approx(50.0)
    assert stats.comp_time == 10.0


def test_speed_metric():
    stats = RunStats(total_time=100.0)
    # Paper Table I: Speed = S / (T x N).
    assert stats.speed(problem_size=24_000_000, n_pes=4) == pytest.approx(60_000)
    with pytest.raises(ValueError):
        RunStats(total_time=0.0).speed(10, 1)


def test_node_autovivification():
    stats = RunStats()
    stats.node(3).add_comp(1.0)
    assert len(stats.nodes) == 4
    assert stats.nodes[3].comp_time == 1.0
    assert stats.nodes[0].comp_time == 0.0


def test_zero_time_percentages_are_zero():
    stats = RunStats(total_time=0.0)
    assert stats.comp_pct(1) == 0.0
    assert stats.overlap_pct(1) == 0.0
