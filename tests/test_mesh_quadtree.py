"""Tests for the quadtree decomposition structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.pslg import BoundingBox
from repro.mesh import QuadTree


def _unit_tree():
    return QuadTree(BoundingBox(0, 0, 1, 1))


def test_root_is_single_leaf():
    tree = _unit_tree()
    assert tree.n_leaves == 1
    assert tree.root.is_leaf
    assert tree.root.depth == 0


def test_split_creates_four_children():
    tree = _unit_tree()
    kids = tree.split(0)
    assert len(kids) == 4
    assert tree.n_leaves == 4
    assert not tree.root.is_leaf
    for cid in kids:
        child = tree.node(cid)
        assert child.depth == 1
        assert child.side == pytest.approx(0.5)


def test_split_twice_rejected():
    tree = _unit_tree()
    tree.split(0)
    with pytest.raises(ValueError):
        tree.split(0)


def test_children_tile_parent_exactly():
    tree = _unit_tree()
    kids = tree.split(0)
    total = sum(tree.node(c).box.width * tree.node(c).box.height for c in kids)
    assert total == pytest.approx(1.0)
    # Quadrant corners meet at the parent center.
    assert tree.node(kids[0]).box.xmax == pytest.approx(0.5)
    assert tree.node(kids[3]).box.xmin == pytest.approx(0.5)


def test_leaf_at_descends():
    tree = _unit_tree()
    tree.split(0)
    leaf = tree.leaf_at((0.9, 0.9))
    assert leaf.box.xmin == pytest.approx(0.5)
    assert leaf.box.ymin == pytest.approx(0.5)


def test_leaf_at_outside_raises():
    tree = _unit_tree()
    with pytest.raises(KeyError):
        tree.leaf_at((2.0, 2.0))


def test_rectangular_box_squared_up():
    tree = QuadTree(BoundingBox(0, 0, 2, 1))
    assert tree.root.box.width == pytest.approx(2.0)
    assert tree.root.box.height == pytest.approx(2.0)


def test_degenerate_box_rejected():
    with pytest.raises(ValueError):
        QuadTree(BoundingBox(0, 0, 0, 0))


def test_build_to_uniform_target():
    tree = _unit_tree()
    tree.build(lambda p: 0.26)
    # Need side <= 0.26: two splits gives 0.25.
    assert all(leaf.side <= 0.26 for leaf in tree.leaves())
    assert tree.n_leaves == 16


def test_build_graded_target():
    """Fine near origin => deeper leaves there."""
    tree = _unit_tree()

    def target(p):
        return max(0.06, 0.05 + 0.5 * (p[0] + p[1]))

    tree.build(target)
    depth_origin = tree.leaf_at((0.01, 0.01)).depth
    depth_far = tree.leaf_at((0.99, 0.99)).depth
    assert depth_origin > depth_far


def test_build_max_depth_cap():
    tree = _unit_tree()
    tree.build(lambda p: 1e-12, max_depth=3)
    assert all(leaf.depth <= 3 for leaf in tree.leaves())


def test_build_invalid_target_rejected():
    tree = _unit_tree()
    with pytest.raises(ValueError):
        tree.build(lambda p: 0.0)


def test_neighbors_of_quadrant():
    tree = _unit_tree()
    kids = tree.split(0)
    sw = tree.node(kids[0])
    nbrs = {n.leaf_id for n in tree.neighbors(sw.leaf_id)}
    assert nbrs == set(kids[1:])  # all other quadrants touch SW (corner counts)


def test_neighbors_requires_leaf():
    tree = _unit_tree()
    tree.split(0)
    with pytest.raises(ValueError):
        tree.neighbors(0)


def test_balance_enforces_two_to_one():
    tree = _unit_tree()
    kids = tree.split(0)
    # Split SW twice: depth-3 leaves next to depth-1 ones.
    grand = tree.split(kids[0])
    tree.split(grand[3])
    assert not tree.is_balanced()
    splits = tree.balance()
    assert splits > 0
    assert tree.is_balanced()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=20))
def test_leaves_always_tile_root(split_choices):
    """Property: after arbitrary splits, leaves exactly tile the root area."""
    tree = _unit_tree()
    for choice in split_choices:
        leaves = list(tree.leaves())
        leaf = leaves[choice % len(leaves)]
        if leaf.depth < 8:
            tree.split(leaf.leaf_id)
    area = sum(l.box.width * l.box.height for l in tree.leaves())
    assert area == pytest.approx(1.0)
    # Any sample point belongs to exactly one leaf.
    for p in [(0.1, 0.2), (0.7, 0.3), (0.999, 0.999)]:
        owners = [l for l in tree.leaves() if l.contains(p)]
        assert tree.leaf_at(p) in owners
