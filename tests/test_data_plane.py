"""Integration tests for the PR 4 data plane.

Drives real runtimes (starved memory, FixedCostModel) through the new
machinery end to end: delta spills shrink backend traffic without
changing application state, the compression tier shrinks the stored
bytes, pack-free size accounting keeps ``stats.packs`` at the spill
count instead of the probe count, the delta log compacts at its bounds,
and the new RunStats counters are populated and consistent.
"""

import pytest

from repro.core import MRTS, MobileObject, MRTSConfig, handler
from repro.core.codec import get_codec
from repro.core.storage import CompressingBackend, MemoryBackend
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.testing.harness import FixedCostModel


class GrowActor(MobileObject):
    """Append-mostly payload through the bytes-append codec."""

    serializer = get_codec("bytes-append")

    def __init__(self, ptr, payload_bytes: int) -> None:
        super().__init__(ptr)
        self.payload = bytes(payload_bytes)
        self.hits = 0

    @handler
    def grow(self, ctx, nbytes: int) -> None:
        self.payload += bytes(nbytes)
        self.hits += 1
        ctx.grew(nbytes)

    @handler
    def touch(self, ctx) -> None:
        self.hits += 1


class PickleGrow(MobileObject):
    """Same workload, default pickle codec, growth reported via ctx.grew."""

    def __init__(self, ptr, payload_bytes: int) -> None:
        super().__init__(ptr)
        self.payload = bytes(payload_bytes)

    @handler
    def grow(self, ctx, nbytes: int) -> None:
        self.payload += bytes(nbytes)
        ctx.grew(nbytes)


def make_runtime(memory_bytes=48 * 1024, n_nodes=2, **cfg):
    return MRTS(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(cores=1, memory_bytes=memory_bytes),
        ),
        config=MRTSConfig(swap_scheme="lru", **cfg),
        cost_model=FixedCostModel(1e-4),
    )


def run_grow_workload(rt, n_actors=6, payload=8 * 1024, rounds=5,
                      grow_bytes=512):
    actors = [
        rt.create_object(GrowActor, payload, node=i % len(rt.nodes))
        for i in range(n_actors)
    ]
    for _ in range(rounds):
        for p in actors:
            rt.post(p, "grow", grow_bytes)
        rt.run()
    return actors


# ----------------------------------------------------------- delta spills
def test_delta_spills_cut_backend_traffic_without_changing_state():
    rt_delta = make_runtime(delta_spills=True)
    rt_full = make_runtime(delta_spills=False)
    a_delta = run_grow_workload(rt_delta)
    a_full = run_grow_workload(rt_full)

    def final(rt, actors):
        return [(rt.get_object(p).hits, len(rt.get_object(p).payload))
                for p in actors]

    assert final(rt_delta, a_delta) == final(rt_full, a_full)
    assert rt_delta.stats.delta_spills > 0
    assert rt_full.stats.delta_spills == 0
    written_delta = sum(n.storage.bytes_written for n in rt_delta.nodes)
    written_full = sum(n.storage.bytes_written for n in rt_full.nodes)
    # Re-spills ship ~512 appended bytes instead of the whole payload.
    assert written_delta < written_full / 2
    assert (rt_delta.stats.payload_bytes_raw
            > rt_delta.stats.payload_bytes_stored)


def test_delta_log_respects_frame_bound():
    rt = make_runtime(delta_spills=True, delta_log_frames_max=3)
    run_grow_workload(rt, rounds=10)
    for nrt in rt.nodes:
        for rec in nrt.locals.values():
            assert rec.log_frames <= 3
    # The bound forced periodic re-baselines: full spills beyond creation.
    assert rt.stats.full_spills > len(rt.nodes)


def test_delta_log_compacts_when_it_outgrows_the_base():
    # A tiny base with large appends trips the bytes-factor compaction.
    rt = make_runtime(delta_spills=True, delta_compact_factor=1.5,
                      delta_log_frames_max=64)
    run_grow_workload(rt, n_actors=6, payload=512, rounds=8,
                      grow_bytes=2048)
    assert rt.stats.full_spills > len(rt.nodes)
    for nrt in rt.nodes:
        for rec in nrt.locals.values():
            if rec.base_payload_bytes:
                assert (rec.log_payload_bytes
                        <= 1.5 * rec.base_payload_bytes + 2048 + 1024)


def test_delta_requires_checksummed_frames():
    # Without the frame layer there are no segment boundaries: the
    # runtime must fall back to full spills, and still run correctly.
    rt = make_runtime(delta_spills=True, checksum_frames=False)
    actors = run_grow_workload(rt)
    assert rt.stats.delta_spills == 0
    assert all(rt.get_object(p).hits == 5 for p in actors)


# ------------------------------------------------------- compression tier
def test_compression_tier_shrinks_stored_bytes():
    rt = make_runtime(compress_spills=True)
    run_grow_workload(rt)  # zero-filled payloads: highly compressible
    comp = [nrt.compressor for nrt in rt.nodes]
    assert all(c is not None for c in comp)
    assert sum(c.compressed_frames for c in comp) > 0
    assert sum(c.bytes_out for c in comp) < sum(c.bytes_in for c in comp)


def test_compression_disabled_leaves_stack_uncomposed():
    rt = make_runtime(compress_spills=False)
    assert all(nrt.compressor is None for nrt in rt.nodes)
    rt2 = make_runtime(checksum_frames=False)  # no frames -> no flags byte
    assert all(nrt.compressor is None for nrt in rt2.nodes)


def test_compressed_spills_round_trip_through_eviction():
    rt = make_runtime(compress_spills=True, delta_spills=True)
    actors = run_grow_workload(rt, rounds=4)
    got = [(rt.get_object(p).hits, len(rt.get_object(p).payload))
           for p in actors]
    assert got == [(4, 8 * 1024 + 4 * 512)] * len(actors)


# -------------------------------------------------- pack-free accounting
def test_codec_size_estimate_avoids_packing_when_nothing_spills():
    rt = make_runtime(memory_bytes=1 << 22)  # roomy: no spills at all
    actors = [rt.create_object(GrowActor, 4096, node=0) for _ in range(4)]
    for p in actors:
        rt.post(p, "grow", 256)
    rt.run()
    assert rt.stats.objects_stored == 0
    assert rt.stats.packs == 0  # size accounting never packed


def test_ctx_grew_avoids_reprobe_packs_for_pickle_objects():
    rt = make_runtime(memory_bytes=1 << 22)
    actors = [rt.create_object(PickleGrow, 4096, node=0) for _ in range(4)]
    for _ in range(6):
        for p in actors:
            rt.post(p, "grow", 256)
        rt.run()
    # Nothing spilled, and growth was reported by the handlers — so no
    # handler-attributed pack ever happened to re-measure an object.
    assert rt.stats.objects_stored == 0
    assert rt.stats.packs == 0
    nbytes = rt.nodes[0].ooc.table[actors[0].oid].nbytes
    assert nbytes >= 4096 + 6 * 256


# ------------------------------------------------------------ run stats
def test_run_stats_expose_data_plane_counters():
    rt = make_runtime(delta_spills=True, compress_spills=True)
    run_grow_workload(rt)
    stats = rt.stats
    assert stats.packs > 0 and stats.unpacks > 0
    assert stats.pack_time >= 0.0 and stats.unpack_time >= 0.0
    # Every spill is exactly one backend store or append (the virtual
    # charge stream may coalesce same-object spills, so compare against
    # the backend op count, not objects_stored).
    assert (stats.delta_spills + stats.full_spills
            == sum(n.storage.stores for n in rt.nodes))
    assert stats.delta_spills + stats.full_spills >= stats.objects_stored
    assert 0.0 < stats.stored_ratio <= 1.0
    # Per-node counters sum to the aggregates.
    assert sum(n.packs for n in stats.nodes) == stats.packs
    assert sum(n.delta_spills for n in stats.nodes) == stats.delta_spills


def test_compressing_backend_rejects_multi_segment_scalar_load():
    from repro.core.storage import ChecksummedBackend
    from repro.util.errors import MRTSError

    comp = CompressingBackend(ChecksummedBackend(MemoryBackend()))
    comp.store(1, b"base" * 300)
    comp.append(1, b"tail" * 300)
    assert len(comp.load_segments(1)) == 2
    with pytest.raises(MRTSError):
        comp.load(1)
