"""Comparative and statistical tests for the batch scheduler policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Job, SchedulerSim, synthetic_job_mix
from repro.sim.scheduler import median_wait_by_width, wait_time_by_width


def test_median_wait_by_width_groups():
    jobs = [Job(k, 0.0, 1, 10.0) for k in range(3)]
    for k, j in enumerate(jobs):
        j.start = float(k)
    med = median_wait_by_width(jobs)
    assert med == {1: 1.0}


def test_backfill_helps_narrow_jobs():
    """EASY backfill must not hurt, and typically helps, narrow jobs."""
    def run(discipline):
        jobs = synthetic_job_mix(n_jobs=800, n_nodes=64, load=0.7, seed=3)
        SchedulerSim(64, discipline).run(jobs)
        return median_wait_by_width(jobs)

    fcfs = run("fcfs")
    easy = run("backfill")
    narrow_fcfs = np.mean([fcfs[w] for w in fcfs if w <= 4])
    narrow_easy = np.mean([easy[w] for w in easy if w <= 4])
    assert narrow_easy <= narrow_fcfs


def test_fig1_shape_is_robust_across_seeds():
    """The Figure 1 gradient is a property of the discipline, not a seed."""
    for seed in (1, 5, 9):
        jobs = synthetic_job_mix(n_jobs=1500, n_nodes=128, load=0.6, seed=seed)
        SchedulerSim(128, "backfill").run(jobs)
        waits = median_wait_by_width(jobs)
        widest = max(waits)
        assert waits[widest] > waits[1]
        assert waits[widest] > waits.get(32, 0.0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_fcfs_starts_in_arrival_order_per_feasibility(seed):
    """FCFS invariant: a job never starts before an earlier-arrived job
    that requests no more nodes than it does."""
    jobs = synthetic_job_mix(n_jobs=60, n_nodes=32, load=0.8, seed=seed)
    SchedulerSim(32, "fcfs").run(jobs)
    ordered = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
    for earlier_idx in range(len(ordered)):
        for later_idx in range(earlier_idx + 1, len(ordered)):
            earlier, later = ordered[earlier_idx], ordered[later_idx]
            if later.nodes >= earlier.nodes:
                assert later.start >= earlier.start - 1e-9


def test_utilization_reasonable_at_moderate_load():
    jobs = synthetic_job_mix(n_jobs=1000, n_nodes=64, load=0.6, seed=2)
    SchedulerSim(64, "backfill").run(jobs)
    end = max(j.start + j.runtime for j in jobs)
    used = sum(j.nodes * j.runtime for j in jobs)
    utilization = used / (64 * end)
    assert 0.3 < utilization < 0.95
